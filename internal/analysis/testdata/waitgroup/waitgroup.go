// Package fixture exercises the waitgroup check.
package fixture

import "sync"

// AddInside calls Add from the spawned goroutine; the spawner can reach
// Wait before Add runs: flagged at the Add call.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want waitgroup
		defer wg.Done()
	}()
	wg.Wait()
}

// MissingDone guards a goroutine that never signals; Wait blocks
// forever: flagged at the go statement.
func MissingDone(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want waitgroup
		work()
	}()
	wg.Wait()
}

// Canonical is the correct pattern: Add before the spawn, deferred Done
// inside it.
func Canonical(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
