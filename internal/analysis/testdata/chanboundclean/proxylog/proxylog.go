// Package proxylog owns the clean-tree Record type.
package proxylog

// Record is one proxy log row.
type Record struct {
	Host  string
	Bytes int64
}
