// Package netproxy is the all-clean chanbound fixture: every hot-loop
// send is bounded by one of the three disciplines, and the remaining
// sends sit outside hot loops. Zero findings.
package netproxy

import (
	"net"
	"time"

	"wearwild/internal/mnet/proxylog"
)

// AcceptDrop drops accepted connections when the handoff is full and
// counts them: the select-with-default discipline on an accept loop.
func AcceptDrop(ln net.Listener, conns chan net.Conn) (dropped int) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return dropped
		}
		select {
		case conns <- c:
		default:
			_ = c.Close()
			dropped++
		}
	}
}

// PushUntilDone bounds record backpressure with a shutdown case.
func PushUntilDone(recs []proxylog.Record, out chan proxylog.Record, done chan struct{}) {
	for _, r := range recs {
		select {
		case out <- r:
		case <-done:
			return
		}
	}
}

// PushDeadline bounds the park with a timer case.
func PushDeadline(recs []proxylog.Record, out chan proxylog.Record) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for _, r := range recs {
		select {
		case out <- r:
		case <-t.C:
			return
		}
	}
}

// DrainOwned owns the whole pipeline: spawned receiver, closed channel,
// joined completion.
func DrainOwned(recs []proxylog.Record) int {
	ch := make(chan proxylog.Record)
	donec := make(chan struct{})
	total := 0
	go func() {
		for range ch {
			total++
		}
		close(donec)
	}()
	for _, r := range recs {
		ch <- r
	}
	close(ch)
	<-donec
	return total
}

// Publish sends outside any hot loop.
func Publish(r proxylog.Record, out chan proxylog.Record) {
	out <- r
}
