// Package fixture exercises the walltime check. Marked lines must
// produce exactly one walltime diagnostic each.
package fixture

import "time"

// Epoch anchors the fixture's simulated clock; time.Unix is a pure
// constructor, not a clock read, and passes.
var Epoch = time.Unix(0, 0)

func Stamp() time.Time {
	return time.Now() // want walltime
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want walltime
}

func Pause() {
	time.Sleep(time.Millisecond) // want walltime
}

func Expire() <-chan time.Time {
	return time.After(time.Second) // want walltime
}

// Later compares two simulated instants; (time.Time).After is a method,
// not a clock read, and must not be flagged.
func Later(a, b time.Time) bool {
	return a.After(b)
}
