package fixture

import "time"

// Test files legitimately poll real deadlines; nothing here is flagged.
func realDeadline() time.Time {
	return time.Now().Add(time.Second)
}
