// Package counters is the atomicmix fixture: old-API sync/atomic
// counters whose hot path is atomic while a snapshot path reads or
// writes them plainly — the torn-read shape the check exists for —
// alongside the mutex-guarded hybrid it must accept.
package counters

import (
	"sync"
	"sync/atomic"
)

// Ops is the cross-package counter: the hot path below arms it, and the
// report package reads it plainly.
var Ops uint64

// Stats is the counter block with a mixed snapshot.
type Stats struct {
	hits   uint64
	misses uint64
	total  uint64

	mu   sync.Mutex
	slow uint64
}

// Record is the hot path: every tracked field is touched atomically.
func (s *Stats) Record(hit bool) {
	atomic.AddUint64(&Ops, 1)
	atomic.AddUint64(&s.total, 1)
	if hit {
		atomic.AddUint64(&s.hits, 1)
	} else {
		atomic.AddUint64(&s.misses, 1)
	}
	s.mu.Lock()
	s.slow++
	s.mu.Unlock()
}

// Snapshot mixes plain reads into atomically-written fields: both reads
// can tear against a concurrent Record.
func (s *Stats) Snapshot() (uint64, uint64) {
	return s.hits, s.misses // want atomicmix atomicmix
}

// Reset writes a tracked field plainly: the write half of the mix.
func (s *Stats) Reset() {
	s.total = 0 // want atomicmix
}

// LockedTotal reads under the mutex: the sanctioned hybrid.
func (s *Stats) LockedTotal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// AtomicTotal loads atomically: uniform access.
func (s *Stats) AtomicTotal() uint64 {
	return atomic.LoadUint64(&s.total)
}
