// Package report reads the counters package's hot counter plainly: the
// module-wide walk unifies the field across units, so the mix is caught
// even one package away from the atomic site.
package report

import "wearwild/internal/counters"

// Total snapshots the hot counter without the atomic load.
func Total() uint64 {
	return counters.Ops // want atomicmix
}
