// Package simtime is the fixture stand-in for simulation time.
package simtime

// Day indexes a simulated day.
type Day int
