// Package gen holds only the sanctioned stream spellings: every Split
// key derives from stable identity (parameters, simtime coordinates,
// constants), labels are constants, and fan-out hands each worker its
// own child.
package gen

import (
	"wearwild/internal/randx"
	"wearwild/internal/simtime"
	"wearwild/internal/shard"
)

// Users derives one child per subscriber keyed by IMSI, never the loop
// counter.
func Users(root *randx.Rand, imsis []uint64) float64 {
	var sum float64
	for _, imsi := range imsis {
		r := root.Split("user", imsi)
		sum += r.Float64()
	}
	return sum
}

// Days keys children off the simtime coordinate, which is exempt even
// as a loop variable: the day index is stable identity.
func Days(u *randx.Rand) float64 {
	var sum float64
	for d := simtime.Day(0); d < 7; d++ {
		sum += u.Split("day", uint64(d)).Float64()
	}
	return sum
}

// PerShard derives a child per shard index and draws only from that.
func PerShard(r *randx.Rand) []float64 {
	out := make([]float64, 4)
	shard.Run(4, 2, func(i int) {
		c := r.Split("shard", uint64(i))
		out[i] = c.Float64()
	})
	return out
}

// HandChild hands each goroutine its own child split at the spawn site;
// after fan-out the parent is only ever split again, never drawn.
func HandChild(r *randx.Rand, done chan float64) {
	go consume(r.Split("w", 1), done)
	go consume(r.Split("w", 2), done)
	c := r.Split("tail", 0)
	done <- c.Float64()
}

func consume(c *randx.Rand, done chan float64) { done <- c.Float64() }
