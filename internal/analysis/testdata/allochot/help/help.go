// Package help sits one call below the sim root, so its finding
// carries the chain from sim.Generate.
package help

// Fill grows an unguarded accumulator on every iteration.
func Fill(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want allochot
	}
	return len(out)
}
