// Package sim mounts at the generator hot-path root: its loops seed
// every per-iteration allocation shape next to the reuse disciplines
// that pass, and its calls into help and population exercise the
// reachability chain and the setup-package exemption.
package sim

import (
	"fmt"

	"wearwild/internal/gen/population"
	"wearwild/internal/help"
)

// Event is one generated record.
type Event struct {
	ID   int
	Name string
}

// Generate seeds the flagged shapes: pointer and container literals,
// cap-unguarded append, per-iteration make, Sprintf, a string
// conversion and a closure — all inside the per-record loop.
func Generate(n int) int {
	var ptrs []*Event
	total := 0
	for i := 0; i < n; i++ {
		e := &Event{ID: i}           // want allochot
		ptrs = append(ptrs, e)       // want allochot
		ids := []int{i}              // want allochot
		m := map[int]int{i: i}       // want allochot
		buf := make([]byte, 16)      // want allochot
		s := fmt.Sprintf("ev-%d", i) // want allochot
		bs := []byte(s)              // want allochot
		f := func() int { return i } // want allochot
		total += e.ID + len(ids) + len(m) + len(buf) + len(bs) + f()
	}
	return total + len(ptrs) + help.Fill(n) + population.Setup(n)
}

// Reuse shows the disciplines that pass: slab reset, cap-guarded
// regrow, make-with-cap, in-place filter aliasing, value literals and a
// closure hoisted above the loop.
func Reuse(n int, evs []Event) int {
	out := make([]Event, 0, n)
	var slab []byte
	double := func(x int) int { return 2 * x }
	total := 0
	for i := 0; i < n; i++ {
		slab = slab[:0]
		if cap(slab) < i {
			slab = make([]byte, 0, i)
		}
		slab = append(slab, byte(i))
		out = append(out, Event{ID: i})
		e := Event{ID: double(i)}
		total += e.ID + len(slab)
	}
	keep := evs[:0]
	for _, e := range evs {
		if e.ID > 0 {
			keep = append(keep, e)
		}
	}
	return total + len(out) + len(keep)
}
