// Package population is reachable from the sim root but sits on the
// exempt list: build-once setup may allocate freely.
package population

// Setup allocates per iteration; the exemption keeps it silent.
func Setup(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return len(out)
}
