// Package randx is the fixture stand-in for the real splittable RNG:
// the analyzer matches the Rand type by package path and name, so the
// generator here is a trivial counter.
package randx

// Rand is a deterministic stream.
type Rand struct{ state uint64 }

// New returns a root stream.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Split derives a child stream; it never advances the parent.
func (r *Rand) Split(label string, id uint64) *Rand {
	h := r.state
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
	}
	return &Rand{state: h ^ id}
}

// Uint64 draws the next value, advancing the stream.
func (r *Rand) Uint64() uint64 { r.state += 0x9e3779b9; return r.state }

// Float64 draws a uniform sample, advancing the stream.
func (r *Rand) Float64() float64 { return float64(r.Uint64()%1000) / 1000 }
