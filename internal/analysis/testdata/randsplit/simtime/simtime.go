// Package simtime is the fixture stand-in for simulation time: Day and
// Week are the stable per-period coordinates the key rule exempts.
package simtime

// Day indexes a simulated day.
type Day int

// Week indexes a simulated week.
type Week int
