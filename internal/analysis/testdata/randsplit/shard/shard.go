// Package shard is the fixture stand-in for the shard runtime: the
// analyzer matches the entry points by package path and name, so the
// body here is a sequential stub.
package shard

// Run executes fn(i) for i in [0, n).
func Run(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
