// Package sub sits one call below the generator root, so its finding
// carries the chain from gen.Stable.
package sub

import "wearwild/internal/randx"

// Helper keys a child off its own loop counter; the diagnostic renders
// the chain from the gen root.
func Helper(r *randx.Rand, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Split("h", uint64(i)).Float64() // want randsplit
	}
	return sum
}
