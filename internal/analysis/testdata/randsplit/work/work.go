// Package work seeds the stream-sharing violations: a shard callback
// drawing from a captured Rand, one Rand flowing into two go
// statements, a loop-spawned goroutine capturing a Rand, and a parent
// drawn after its Split child was handed off — next to the sanctioned
// split-per-worker spellings.
package work

import (
	"wearwild/internal/randx"
	"wearwild/internal/shard"
)

// Captured draws from the captured parent inside a shard callback:
// every worker interleaves on one stream.
func Captured(r *randx.Rand) []float64 {
	out := make([]float64, 4)
	shard.Run(4, 2, func(i int) {
		out[i] = r.Float64() // want randsplit
	})
	return out
}

// PerShard derives a child per shard index and draws from that:
// sanctioned — Split never advances the parent.
func PerShard(r *randx.Rand) []float64 {
	out := make([]float64, 4)
	shard.Run(4, 2, func(i int) {
		c := r.Split("shard", uint64(i))
		out[i] = c.Float64()
	})
	return out
}

// FanTwice hands one parent to two goroutines, racing the stream state.
func FanTwice(r *randx.Rand, done chan float64) {
	go func() { done <- r.Float64() }()
	go func() { done <- r.Float64() }() // want randsplit
}

// LoopSpawn captures one parent in every iteration's goroutine.
func LoopSpawn(r *randx.Rand, done chan float64) {
	for i := 0; i < 3; i++ {
		go func() { done <- r.Float64() }() // want randsplit
	}
}

// DrawAfterHandoff splits a child to a worker goroutine, then keeps
// drawing from the parent: the parent is split-only after fan-out.
func DrawAfterHandoff(r *randx.Rand, done chan float64) float64 {
	c := r.Split("w", 1)
	go func() { done <- c.Float64() }()
	return r.Float64() // want randsplit
}

// HandChild hands each goroutine its own child split at the spawn site:
// the sanctioned fan-out spelling.
func HandChild(r *randx.Rand, done chan float64) {
	for i := uint64(0); i < 3; i++ {
		go consume(r.Split("w", i), done)
	}
}

func consume(c *randx.Rand, done chan float64) { done <- c.Float64() }
