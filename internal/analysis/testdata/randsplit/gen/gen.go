// Package gen mounts at the generator root: its Split calls seed every
// key-discipline violation — loop-counter key, map-range key,
// non-constant label — next to the stable-identity spellings that pass,
// and its call into sub makes that package's finding carry a chain.
package gen

import (
	"wearwild/internal/randx"
	"wearwild/internal/simtime"
	"wearwild/internal/sub"
)

// Users derives one child per subscriber keyed by the loop counter: the
// violation the parallel generator must not ship.
func Users(root *randx.Rand, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		r := root.Split("user", uint64(i)) // want randsplit
		sum += r.Float64()
	}
	return sum
}

// Cities keys children off a map-range variable: iteration order leaks
// into the stream assignment.
func Cities(root *randx.Rand, m map[uint64]int) float64 {
	var sum float64
	for id := range m {
		r := root.Split("city", id) // want randsplit
		sum += r.Float64()
	}
	return sum
}

// Labeled passes a computed label: labels must be compile-time
// constants on generator paths.
func Labeled(root *randx.Rand, lbl string) float64 {
	r := root.Split(lbl, 0) // want randsplit
	return r.Float64()
}

// Stable shows the sanctioned spellings: parameter-derived identity,
// simtime coordinates, constant ids and slice-range element identity.
func Stable(root *randx.Rand, imsi uint64) float64 {
	u := root.Split("user", imsi)
	sum := u.Float64()
	for d := simtime.Day(0); d < 7; d++ {
		sum += u.Split("day", uint64(d)).Float64()
	}
	for _, id := range []uint64{1, 2, 3} {
		sum += u.Split("fixed", id).Float64()
	}
	return sum + sub.Helper(u, 3)
}
