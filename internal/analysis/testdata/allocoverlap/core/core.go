// Package core mounts at the study root, putting pack on the growbound
// surface.
package core

import (
	"wearwild/internal/mnet/proxylog"
	"wearwild/internal/pack"
)

// Study drives the collector from the study side.
func Study(recs []proxylog.Record) int {
	return len(pack.Collect(recs))
}
