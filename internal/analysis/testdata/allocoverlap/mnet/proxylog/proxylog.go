// Package proxylog declares the record type both growbound and the
// allocation check key on.
package proxylog

// Record is one proxy log line.
type Record struct {
	IMSI  uint64
	Bytes int64
}
