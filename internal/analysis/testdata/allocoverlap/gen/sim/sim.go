// Package sim mounts at the generator root, putting pack on the
// allochot surface.
package sim

import (
	"wearwild/internal/mnet/proxylog"
	"wearwild/internal/pack"
)

// Gen drives the collector and the packer from the generator side.
func Gen(recs []proxylog.Record) int {
	return len(pack.Collect(recs)) + len(pack.Pack(nil))
}
