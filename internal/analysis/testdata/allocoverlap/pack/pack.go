// Package pack is reachable from both the study root (growbound's
// surface) and the generator root (allochot's surface): Collect's
// materialising append is flagged by both checks on the same line, and
// Pack's slab-header append is flagged by retain and allochot on the
// same line. The dedupe keeps the more specific check each time.
package pack

import "wearwild/internal/mnet/proxylog"

// Collect materialises the whole log and hands it back.
func Collect(recs []proxylog.Record) []proxylog.Record {
	var all []proxylog.Record
	for _, r := range recs {
		all = append(all, r) // want growbound
	}
	return all
}

// Pack reuses a scratch slab and appends its header into the output.
func Pack(chunks [][]byte) [][]byte {
	var out [][]byte
	var buf []byte
	for _, c := range chunks {
		buf = buf[:0]
		buf = append(buf, c...)
		out = append(out, buf) // want retain
	}
	return out
}
