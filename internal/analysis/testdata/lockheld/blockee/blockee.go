// Package blockee provides cross-package callees for the lockheld
// fixture: one that parks, one that never blocks.
package blockee

var ch = make(chan int)

// Park blocks on a channel receive.
func Park() int {
	return <-ch
}

// Calc never blocks.
func Calc(n int) int {
	return n * 2
}
