// Package lockfix exercises the lockheld scanner: parks under a held
// mutex (direct, via stdlib leaves, and via a cross-package chain) and
// the clean idioms that must stay silent.
package lockfix

import (
	"net"
	"sync"
	"time"

	"wearwild/internal/fixture/blockee"
)

var (
	mu sync.Mutex
	ch = make(chan int)
)

// SendUnderLock parks on a channel send while holding mu.
func SendUnderLock() {
	mu.Lock()
	ch <- 1 // want lockheld
	mu.Unlock()
}

// SleepUnderLock defers the unlock, so the lock is held across the
// sleep.
func SleepUnderLock() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want lockheld
}

// DialUnderLock performs net I/O while holding mu.
func DialUnderLock() {
	mu.Lock()
	conn, err := net.Dial("tcp", "127.0.0.1:1") // want lockheld
	mu.Unlock()
	if err == nil {
		conn.Close()
	}
}

// ChainUnderLock reaches a channel op through another package.
func ChainUnderLock() int {
	mu.Lock()
	n := blockee.Park() // want lockheld
	mu.Unlock()
	return n
}

// PollUnderLock uses a select with a default: a poll, not a park.
func PollUnderLock() {
	mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	mu.Unlock()
}

// UnlockThenSend releases before blocking.
func UnlockThenSend() {
	mu.Lock()
	x := blockee.Calc(1)
	mu.Unlock()
	ch <- x
}

// SpawnUnderLock's literal runs on its own goroutine: the send inside
// is not under this function's lock.
func SpawnUnderLock() {
	mu.Lock()
	go func() {
		ch <- 2
	}()
	mu.Unlock()
}
