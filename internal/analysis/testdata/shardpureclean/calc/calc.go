// Package calc is the clean half of the shardpure suite: a pipeline
// that plays by every DESIGN.md §7 rule and must produce zero findings.
package calc

import (
	"sync"

	"wearwild/internal/shard"
)

// Totals aggregates per-shard partials into fixed slots, then merges
// sequentially after the barrier.
func Totals(shards [][]int) int {
	partials := make([]int, len(shards))
	shard.Run(len(shards), 2, func(i int) {
		sum := 0
		for _, v := range shards[i] {
			sum += v
		}
		partials[i] = sum
	})
	total := 0
	for _, p := range partials {
		total += p
	}
	return total
}

// Collect uses shard.Map's per-index return path: per-shard maps built
// from invocation-local state, merged after the barrier.
func Collect(shards [][]string) map[string]int {
	parts := shard.Map(shards, 2, func(_ int, s []string) map[string]int {
		m := map[string]int{}
		for _, k := range s {
			m[k]++
		}
		return m
	})
	out := map[string]int{}
	for _, p := range parts {
		for k, v := range p {
			out[k] += v
		}
	}
	return out
}

// Guarded funnels every shared write through a mutex.
func Guarded(n int) map[int]bool {
	var mu sync.Mutex
	seen := map[int]bool{}
	shard.Run(n, 2, func(i int) {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
	})
	return seen
}
