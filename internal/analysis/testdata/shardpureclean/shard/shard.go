// Package shard is the fixture stand-in for the real shard runtime.
package shard

// Run executes fn(i) for i in [0, n).
func Run(n, workers int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Map runs fn per shard and collects the per-index results.
func Map[S, R any](shards []S, workers int, fn func(i int, s S) R) []R {
	out := make([]R, len(shards))
	Run(len(shards), workers, func(i int) {
		out[i] = fn(i, shards[i])
	})
	return out
}
