// Package fixture exercises the //wearlint:ignore suppression directive
// against deliberate walltime violations.
package fixture

import "time"

// Stamp is suppressed on the same line.
func Stamp() time.Time {
	return time.Now() //wearlint:ignore walltime fixture exercises same-line suppression
}

// StampAbove is suppressed from the line directly above.
func StampAbove() time.Time {
	//wearlint:ignore walltime fixture exercises line-above suppression
	return time.Now()
}

// StampAll is suppressed by the wildcard.
func StampAll() time.Time {
	return time.Now() //wearlint:ignore all fixture exercises the wildcard
}

// StampWrongCheck names a different check, so the walltime finding
// survives the filter.
func StampWrongCheck() time.Time {
	return time.Now() //wearlint:ignore maporder wrong check leaves walltime live // want walltime
}

// The bare directive below is malformed (no check, no reason) and must
// itself be reported under the unsuppressable "ignore" pseudo-check.
//wearlint:ignore
func Clean() time.Time {
	return time.Unix(0, 0)
}
