// Package figs is the mergeable clean tree: every shard accumulator
// merges exactly — int sums, disjoint unions, shard-order
// concatenation and a named type with an integer Merge. Zero findings.
package figs

import "wearwild/internal/shard"

// hist merges by integer sums.
type hist struct {
	buckets [8]int
}

// Merge adds the other shard's buckets slot by slot.
func (h *hist) Merge(o hist) {
	for i := range h.buckets {
		h.buckets[i] = h.buckets[i] + o.buckets[i]
	}
}

// Counts returns per-shard ints.
func Counts(rows [][]int) []int {
	return shard.Map(rows, 2, func(i int, s []int) int {
		return len(s)
	})
}

// Groups returns disjoint per-shard maps.
func Groups(rows [][]int) []map[int]int {
	return shard.Map(rows, 2, func(i int, s []int) map[int]int {
		return map[int]int{i: len(s)}
	})
}

// Rows returns per-shard slices for shard-order concatenation.
func Rows(rows [][]int) [][]int {
	return shard.Map(rows, 2, func(i int, s []int) []int {
		return append([]int(nil), s...)
	})
}

// Hists returns the integer-Merge accumulator.
func Hists(rows [][]int) []hist {
	return shard.Map(rows, 2, func(i int, s []int) hist {
		var h hist
		for _, v := range s {
			h.buckets[v%8] = h.buckets[v%8] + 1
		}
		return h
	})
}
