// Package figs is the mergeable clean tree: every shard accumulator
// merges exactly — int sums, disjoint unions, shard-order
// concatenation and a named type with an integer Merge. Zero findings.
package figs

import "wearwild/internal/shard"

// hist merges by integer sums.
type hist struct {
	buckets [8]int
}

// Merge adds the other shard's buckets slot by slot.
func (h *hist) Merge(o hist) {
	for i := range h.buckets {
		h.buckets[i] = h.buckets[i] + o.buckets[i]
	}
}

// Counts returns per-shard ints.
func Counts(rows [][]int) []int {
	return shard.Map(rows, 2, func(i int, s []int) int {
		return len(s)
	})
}

// Groups returns disjoint per-shard maps.
func Groups(rows [][]int) []map[int]int {
	return shard.Map(rows, 2, func(i int, s []int) map[int]int {
		return map[int]int{i: len(s)}
	})
}

// Rows returns per-shard slices for shard-order concatenation.
func Rows(rows [][]int) [][]int {
	return shard.Map(rows, 2, func(i int, s []int) []int {
		return append([]int(nil), s...)
	})
}

// Hists returns the integer-Merge accumulator.
func Hists(rows [][]int) []hist {
	return shard.Map(rows, 2, func(i int, s []int) hist {
		var h hist
		for _, v := range s {
			h.buckets[v%8] = h.buckets[v%8] + 1
		}
		return h
	})
}

// daySpan nests inside tally without a Merge of its own: exact fields
// all the way down.
type daySpan struct {
	first, last int
}

// tally has no Merge method; the field-wise rule recurses through the
// nested struct, the map and the ints and accepts it.
type tally struct {
	n     int
	span  daySpan
	byKey map[string]int64
}

// Tallies returns the Merge-less field-wise-mergeable accumulator.
func Tallies(rows [][]int) []tally {
	return shard.Map(rows, 2, func(i int, s []int) tally {
		return tally{n: len(s), span: daySpan{first: i, last: i}, byKey: map[string]int64{"n": int64(len(s))}}
	})
}
