// Package shard is the clean-tree stand-in for the shard runtime.
package shard

// Map executes fn per shard and collects the per-shard accumulators.
func Map[S, T any](shards []S, workers int, fn func(i int, s S) T) []T {
	out := make([]T, len(shards))
	for i, s := range shards {
		out[i] = fn(i, s)
	}
	return out
}
