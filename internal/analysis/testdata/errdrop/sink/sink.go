// Package sink is the second package of the errdrop tree: the check is
// intraprocedural, so each package is judged on its own, and a clean
// package next to a violating one must stay clean.
package sink

import "errors"

// Flush fails when asked to.
func Flush(fail bool) error {
	if fail {
		return errors.New("sink: flush failed")
	}
	return nil
}

// Drain drops the flush error.
func Drain() {
	Flush(true) // want errdrop
}

// Settle handles it.
func Settle() error {
	return Flush(false)
}
