// Package emit seeds the errdrop violations: error-returning calls used
// as bare or deferred statements, next to every sanctioned spelling —
// checked, assigned to _, exempt receivers, and the suppression
// directive.
package emit

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
)

// process returns an error the callers below variously drop or handle.
func process(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

// emit returns a value and an error.
func emit(n int) (int, error) {
	return n, process(n)
}

// Dropped discards both forms outright.
func Dropped(n int) {
	process(n)       // want errdrop
	emit(n)          // want errdrop
	defer process(n) // want errdrop
}

// Handled propagates and acknowledges.
func Handled(n int) error {
	if err := process(n); err != nil {
		return err
	}
	_, err := emit(n)
	if err != nil {
		return err
	}
	_ = process(n)
	process(n) //wearlint:ignore errdrop fixture exercises the documented opt-out
	return nil
}

// Exempt covers the documented exemption classes.
func Exempt(w *bufio.Writer, path string) string {
	fmt.Println("status")
	fmt.Fprintf(os.Stderr, "status: %s\n", path)
	var sb strings.Builder
	sb.WriteString("a")
	var buf bytes.Buffer
	buf.WriteByte('b')
	f, err := os.Open(path)
	if err != nil {
		return sb.String()
	}
	defer f.Close()
	return sb.String()
}

// DroppedWriter drops a flushable writer's error: errdrop's overlap
// with closecheck (the dedupe test runs both together elsewhere).
func DroppedWriter(w *bufio.Writer) {
	w.Flush() // want errdrop
}
