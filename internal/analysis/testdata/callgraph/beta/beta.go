// Package beta is the callee side of the call-graph fixture.
package beta

// Helper is the static-call target; its private callee extends the
// chain one hop for path reconstruction.
func Helper() int {
	return 40 + two()
}

func two() int { return 2 }

// Impl's Do matches alpha.Doer's method by name and signature.
type Impl struct{}

// Do satisfies alpha.Doer.
func (Impl) Do(n int) int { return n + 1 }

// Other's Do shares the name but not the signature; interface dispatch
// must not resolve to it.
type Other struct{}

// Do is a decoy for name-only matching.
func (Other) Do(s string) string { return s }
