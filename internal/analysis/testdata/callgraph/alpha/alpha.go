// Package alpha is the caller side of the call-graph fixture: one
// static cross-package call, one interface dispatch, one method value
// called through a func variable.
package alpha

import "wearwild/internal/fixture/beta"

// Doer mirrors beta.Impl's method set. The graph resolves calls through
// it by name and signature, not by a proven implements relation — the
// over-approximation under test.
type Doer interface {
	Do(n int) int
}

// Direct is a plain cross-package static call.
func Direct() int {
	return beta.Helper()
}

// UseIface dispatches through the interface.
func UseIface(d Doer) int {
	return d.Do(1)
}

// TakeValue takes a method value and calls it through a func variable.
func TakeValue() int {
	v := beta.Impl{}
	f := v.Do
	return f(2)
}
