// Package fixture exercises the maporder check.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// Rows appends to an outer slice in map order: flagged.
func Rows(m map[string]int) []string {
	var out []string
	for k, v := range m { // want maporder
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Render writes through an io.Writer in map order: flagged.
func Render(w io.Writer, m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// SortedRows collects, sorts, then emits; the sort call in the same
// function exempts every loop in it.
func SortedRows(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// Count only accumulates a commutative reduction; order-insensitive
// loops pass without a sort.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes map-to-map; insertion order does not matter.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
