// Package figs is the clean floatfold tree: integer map-range folds,
// sorted-key float folds, and parallel sections that only touch
// invocation-local accumulators and fixed slots. Zero findings.
package figs

import (
	"sort"

	"wearwild/internal/shard"
)

// Histogram counts per key: integer accumulation is exact in any order.
func Histogram(events map[string][]int) map[string]int {
	out := make(map[string]int, len(events))
	for k, vs := range events {
		out[k] = len(vs)
	}
	return out
}

// WeightedMean folds floats only after sorting the keys.
func WeightedMean(weights map[string]float64) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += weights[k]
	}
	if len(keys) == 0 {
		return 0
	}
	return sum / float64(len(keys))
}

// ShardMeans computes per-shard means into fixed slots; the
// cross-shard reduction happens sequentially after the barrier.
func ShardMeans(vals [][]float64) float64 {
	means := make([]float64, len(vals))
	shard.Run(len(vals), 2, func(i int) {
		s := 0.0
		for _, v := range vals[i] {
			s += v
		}
		if len(vals[i]) > 0 {
			means[i] = s / float64(len(vals[i]))
		}
	})
	total := 0.0
	for _, m := range means {
		total += m
	}
	return total / float64(len(means))
}
