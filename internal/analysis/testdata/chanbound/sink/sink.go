// Package sink holds the helper a collection root reaches: its hot-loop
// send flags with the chain from netproxy.Collect.
package sink

import "wearwild/internal/mnet/proxylog"

// Forward pushes records through an unbounded send one hop below the
// root.
func Forward(recs []proxylog.Record, out chan proxylog.Record) {
	for _, r := range recs {
		out <- r // want chanbound
	}
}
