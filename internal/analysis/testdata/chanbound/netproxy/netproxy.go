// Package netproxy is the chanbound fixture root: its functions are
// collection-path roots, so every record/accept hot loop here — and in
// the helpers they call — is audited for unbounded sends.
package netproxy

import (
	"net"

	"wearwild/internal/mnet/proxylog"
	"wearwild/internal/mnet/sink"
)

// AcceptPush hands accepted connections into an unbounded channel: a
// stalled receiver parks the accept loop.
func AcceptPush(ln net.Listener, conns chan net.Conn) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- c // want chanbound
	}
}

// PumpRecords pushes every record through an unbounded send.
func PumpRecords(recs []proxylog.Record, out chan proxylog.Record) {
	for _, r := range recs {
		out <- r // want chanbound
	}
}

// PushBuffered shows that capacity alone is not a bound: the buffer only
// delays the park.
func PushBuffered(recs []proxylog.Record) chan proxylog.Record {
	out := make(chan proxylog.Record, 64)
	for _, r := range recs {
		out <- r // want chanbound
	}
	return out
}

// PushViaClosure sends from a literal nested in the hot loop: it still
// runs once per iteration.
func PushViaClosure(recs []proxylog.Record, out chan proxylog.Record) {
	for _, r := range recs {
		r := r
		func() {
			out <- r // want chanbound
		}()
	}
}

// Collect reaches the sink helper: the finding there carries this chain.
func Collect(recs []proxylog.Record, out chan proxylog.Record) {
	sink.Forward(recs, out)
}

// PushOrDrop takes the select-with-default drop path: bounded.
func PushOrDrop(recs []proxylog.Record, out chan proxylog.Record) (dropped int) {
	for _, r := range recs {
		select {
		case out <- r:
		default:
			dropped++
		}
	}
	return dropped
}

// PushUntilDone bounds the backpressure with a shutdown case.
func PushUntilDone(recs []proxylog.Record, out chan proxylog.Record, done chan struct{}) {
	for _, r := range recs {
		select {
		case out <- r:
		case <-done:
			return
		}
	}
}

// DrainOwned owns the pipeline: it spawns the receiver, closes the
// channel after the loop, and joins on the completion signal.
func DrainOwned(recs []proxylog.Record) int {
	ch := make(chan proxylog.Record)
	donec := make(chan struct{})
	total := 0
	go func() {
		for range ch {
			total++
		}
		close(donec)
	}()
	for _, r := range recs {
		ch <- r
	}
	close(ch)
	<-donec
	return total
}

// Publish sends outside any hot loop: not chanbound's business.
func Publish(r proxylog.Record, out chan proxylog.Record) {
	out <- r
}
