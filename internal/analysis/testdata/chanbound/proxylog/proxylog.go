// Package proxylog owns the fixture Record type the hot-loop detector
// keys on; it mounts under internal/mnet so the type matcher unifies it
// with the real codec's records.
package proxylog

// Record is one proxy log row.
type Record struct {
	Host  string
	Bytes int64
}
