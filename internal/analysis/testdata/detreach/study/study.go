// Package study mounts at internal/study: a determinism root. The
// banned calls it reaches sit two hops away in clockutil.
package study

import "wearwild/internal/clockutil"

// Pipeline is the root entry point of the fixture chain.
func Pipeline() (int64, int) {
	return clockutil.Stamp(), clockutil.Draw() + clockutil.Seeded()
}
