// Package clockutil mounts at internal/clockutil, outside the
// determinism roots: only the calls the roots can reach may be flagged.
package clockutil

import (
	"math/rand"
	"time"
)

// Stamp is reachable from study.Pipeline: its clock read is a finding.
func Stamp() int64 {
	return time.Now().UnixNano() // want detreach
}

// Draw is reachable too: the global-stream draw is a finding.
func Draw() int {
	return rand.Intn(6) // want detreach
}

// Seeded constructs its own stream: rand.New* is not banned.
func Seeded() int {
	return rand.New(rand.NewSource(1)).Intn(6)
}

// Unused is not reachable from any root: its clock read stays silent,
// proving the check is reachability-based, not package-based.
func Unused() int64 {
	return time.Now().UnixNano()
}
