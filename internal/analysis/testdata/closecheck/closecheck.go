// Package fixture exercises the closecheck check.
package fixture

import (
	"bufio"
	"io"
	"os"
)

// DropFlush ignores the buffered writer's Flush error in a function that
// could have propagated it: flagged.
func DropFlush(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("row\n"); err != nil {
		return err
	}
	bw.Flush() // want closecheck
	return nil
}

// DeferDrop defers the close of a created (written) file: flagged.
func DeferDrop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want closecheck
	_, err = f.WriteString("data")
	return err
}

// AckFlush assigns the error to _, the explicit greppable
// acknowledgment: passes.
func AckFlush(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("row\n"); err != nil {
		return err
	}
	_ = bw.Flush()
	return nil
}

// ReadOnly closes an os.Open handle; there are no buffered writes to
// lose, so the deferred Close passes.
func ReadOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.ReadAll(f)
	return err
}

// NoErrorReturn cannot propagate the error anyway, so it is not flagged.
func NoErrorReturn(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.Flush()
}
