// Package overlap pins the closecheck/errdrop dedupe: both checks match
// a dropped writer Close/Flush at the same position, and Module.Run
// must fold the pair into the single closecheck diagnostic.
package overlap

import (
	"bufio"
	"fmt"
	"os"
)

// WriteReport drops the Flush and Close errors of a writer path: one
// diagnostic per call site, not two.
func WriteReport(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := fmt.Fprintln(w, "report"); err != nil {
		return err
	}
	w.Flush()       // want closecheck
	defer f.Close() // want closecheck
	return nil
}
