// Package codec is the retain clean tree: the same slab markers as the
// flagged fixture, but every use copies first or stays within the
// iteration. Zero findings.
package codec

// Decoder reuses scratch across Decode calls.
type Decoder struct {
	scratch []byte
}

// fill resets the slab: the reuse marker.
func (d *Decoder) fill(src []byte) {
	d.scratch = d.scratch[:0]
	d.scratch = append(d.scratch, src...)
}

// ensure is the cap-guarded regrow marker.
func (d *Decoder) ensure(n int) {
	if cap(d.scratch) < n {
		d.scratch = make([]byte, 0, n)
	}
}

// Token copies the slab before returning.
func (d *Decoder) Token() []byte {
	return append([]byte(nil), d.scratch...)
}

// Text converts to a string, which copies.
func (d *Decoder) Text() string {
	return string(d.scratch)
}

// Store copies the bytes into the map value.
func (d *Decoder) Store(m map[string][]byte, k string) {
	m[k] = append([]byte(nil), d.scratch...)
}

// Local aliases the slab inside the iteration only: the alias never
// escapes the function.
func (d *Decoder) Local() int {
	view := d.scratch
	n := 0
	for _, b := range view {
		n += int(b)
	}
	return n
}
