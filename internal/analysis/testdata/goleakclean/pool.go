// Package pool mounts at internal/shard and uses every sanctioned
// spawn discipline in one worker-pool idiom: WaitGroup-joined workers,
// a done-channel drain, a buffered error handoff and a completion
// close. Zero findings.
package pool

import "sync"

// Fan runs n joined workers over jobs and closes out when they finish.
func Fan(n int, jobs chan int) chan int {
	out := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out <- j * j
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Watch drains events until the stop channel fires.
func Watch(events chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-events:
			case <-stop:
				return
			}
		}
	}()
}

// Start hands its result off on a buffered channel and returns.
func Start(run func() error) chan error {
	errs := make(chan error, 1)
	go func() {
		errs <- run()
	}()
	return errs
}
