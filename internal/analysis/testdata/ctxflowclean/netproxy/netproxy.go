// Package netproxy is the all-clean ctxflow fixture: every goroutine
// path uses a sanctioned cancellation discipline, so the check must stay
// entirely silent.
package netproxy

import (
	"net"
	"sync"
	"time"
)

// Pool drains jobs under a joined lifecycle and a done select.
type Pool struct {
	wg   sync.WaitGroup
	jobs chan int
	done chan struct{}
}

// Start spawns joined workers that select jobs against shutdown.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case j, ok := <-p.jobs:
					if !ok {
						return
					}
					_ = j
				case <-p.done:
					return
				}
			}
		}()
	}
}

// Serve gates every accept on the done channel.
func (p *Pool) Serve(ln net.Listener) {
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			select {
			case <-p.done:
				_ = c.Close()
				return
			default:
			}
			_ = c.Close()
		}
	}()
}

// Relay arms both deadlines before spawning the copier.
func Relay(c net.Conn) {
	_ = c.SetDeadline(time.Now().Add(10 * time.Second))
	go func() {
		buf := make([]byte, 512)
		_, _ = c.Read(buf)
		_, _ = c.Write(buf)
	}()
}

// DialBounded hands the result through a buffered channel and bounds the
// wait with a timer select; the spawned send never parks.
func DialBounded(dial func() (net.Conn, error)) (net.Conn, error) {
	ch := make(chan net.Conn, 1)
	t := time.NewTimer(time.Second)
	defer t.Stop()
	go func() {
		c, err := dial()
		if err != nil {
			ch <- nil
			return
		}
		ch <- c
	}()
	select {
	case c := <-ch:
		return c, nil
	case <-t.C:
		return nil, net.ErrClosed
	}
}

// WaitShutdown parks on the shutdown signal itself: the sanctioned park.
func WaitShutdown(stop chan struct{}) {
	go func() {
		<-stop
	}()
}
