// Package stream is the fixture stand-in for the streaming contract.
package stream

import "wearwild/internal/mnet/proxylog"

// Sink receives each record exactly once and must not retain it.
type Sink interface {
	Proxy(rec proxylog.Record) error
	UserDone(imsi uint64) error
}
