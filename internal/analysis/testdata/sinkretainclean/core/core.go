// Package core holds the sanctioned streaming shapes: a sink that
// folds every record into bounded scalar accumulators, and a type that
// stores records but implements only half the contract, so the Sink
// rule does not apply to it.
package core

import "wearwild/internal/mnet/proxylog"

// foldSink folds each record into per-user scalar accumulators and
// evicts the user's slot when the stream says it is done.
type foldSink struct {
	bytes int64
	count int
	users map[uint64]int64
}

// Proxy implements stream.Sink by folding, never retaining.
func (s *foldSink) Proxy(r proxylog.Record) error {
	s.bytes += r.Bytes
	s.users[r.IMSI] += r.Bytes
	s.count++
	return nil
}

// UserDone implements stream.Sink by evicting the finished user.
func (s *foldSink) UserDone(imsi uint64) error {
	delete(s.users, imsi)
	return nil
}

// keeper stores records but implements only Proxy: without the full
// contract it is not a Sink, and the rule stays quiet.
type keeper struct{ all []proxylog.Record }

// Proxy looks like the contract method but the type never satisfies
// stream.Sink.
func (k *keeper) Proxy(r proxylog.Record) error {
	k.all = append(k.all, r)
	return nil
}
