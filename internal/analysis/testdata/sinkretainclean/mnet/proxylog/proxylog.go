// Package proxylog declares the record type the escape layer tracks.
package proxylog

// Record is one proxy log line.
type Record struct {
	IMSI  uint64
	Host  string
	Bytes int64
}
