// Package sim holds only the reuse disciplines: slab grammar,
// make-with-cap, in-place filtering, value literals and hoisted
// closures — nothing allocates per record.
package sim

import "wearwild/internal/gen/population"

// Event is one generated record.
type Event struct{ ID int }

// Generate fills a preallocated buffer through a reused slab.
func Generate(n int) int {
	out := make([]Event, 0, n)
	var slab []byte
	square := func(x int) int { return x * x }
	total := 0
	for i := 0; i < n; i++ {
		slab = slab[:0]
		if cap(slab) < i {
			slab = make([]byte, 0, i)
		}
		slab = append(slab, byte(i))
		out = append(out, Event{ID: square(i)})
		total += len(slab)
	}
	return total + len(out) + population.Setup(n)
}

// Filter keeps matching events in place, aliasing the input backing
// array instead of growing a fresh one.
func Filter(evs []Event) []Event {
	keep := evs[:0]
	for _, e := range evs {
		if e.ID > 0 {
			keep = append(keep, e)
		}
	}
	return keep
}
