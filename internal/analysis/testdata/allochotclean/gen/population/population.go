// Package population is exempt setup: its allocations never count
// against the hot path.
package population

// Setup allocates per iteration; the exemption keeps it silent.
func Setup(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return len(out)
}
