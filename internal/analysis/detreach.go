package analysis

import (
	"go/types"
	"strings"
)

// detreachRoots are the determinism roots: the packages whose outputs
// EXPERIMENTS.md pins byte-for-byte. walltime and globalrand police
// direct calls with package allowlists; detreach removes the trust those
// allowlists imply by checking the transitive property instead — a
// time.Now three packages away is exactly as fatal to reproducibility as
// one written in sim code, and an allowlisted networked package is only
// safe while the deterministic pipeline cannot reach it.
var detreachRoots = []string{
	"cmd/wearstudy",
	"internal/study/...",
	"internal/gen/...",
}

// DetreachAnalyzer reports every wall-clock or global-rand call the
// determinism roots can reach through any call chain, with the chain in
// the diagnostic.
var DetreachAnalyzer = &Analyzer{
	Name:      "detreach",
	Doc:       "wall-clock or global math/rand call reachable from the deterministic pipeline (wearstudy, internal/study, internal/gen), reported with the call chain",
	RunModule: runDetreach,
}

// detreachBanned classifies a non-module function as determinism-hostile:
// the package-level time clock readers (walltime's list) and the
// package-level math/rand stream draws (globalrand's predicate).
func detreachBanned(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // methods compare instants or draw from seeded streams
	}
	switch pkg.Path() {
	case "time":
		if walltimeBanned[fn.Name()] {
			return "time." + fn.Name() + " couples output to the wall clock"
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			return "rand." + fn.Name() + " draws from the process-global stream"
		}
	}
	return ""
}

func runDetreach(mp *ModulePass) {
	g := mp.Graph
	var roots []*Node
	g.Walk(func(n *Node) {
		if n.InModule && !n.Test && matchRel(n.Rel, detreachRoots) {
			roots = append(roots, n)
		}
	})
	reach := g.ReachableFrom(roots)

	// Report once per offending call site: every edge whose caller the
	// roots reach and whose callee is banned. The chain is the shortest
	// discovery path to the caller plus the offending call itself.
	g.Walk(func(caller *Node) {
		if !reach.Contains(caller) || caller.Test {
			return
		}
		for _, e := range caller.Out {
			if e.Callee.Fn == nil || e.Callee.InModule {
				continue
			}
			why := detreachBanned(e.Callee.Fn)
			if why == "" {
				continue
			}
			chain := append(reach.PathTo(caller), e)
			root := chain[0].Caller
			mp.Reportf(e.Pos, pathSteps(mp.Mod, chain),
				"%s and is reachable from determinism root %s: %s; thread simtime/randx values in instead of reaching the clock or global stream",
				why, root.DisplayName(mp.Mod), renderChain(mp.Mod, chain))
		}
	})
}
