package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MaporderAnalyzer is the check that protects figure and report output:
// a `for … range` over a map whose body emits — appends to a slice
// declared outside the loop, writes through an io.Writer, or calls a
// print/write-shaped method — is only deterministic if the function also
// sorts. Go randomises map iteration per run, so an unsorted emitting
// loop produces byte-different reports on every invocation.
//
// The heuristic is deliberately a tripwire, not a prover: any call to a
// sort-shaped function (package sort, slices.Sort*, slices.Sorted*, or a
// local helper with "sort" in its name) anywhere in the same top-level
// function exempts the loop, because the dominant safe idioms are
// "collect keys, sort, iterate" and
// `for _, k := range slices.Sorted(maps.Keys(m))` — both of which leave
// a visible sort call behind.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "emitting from a map range without sorting makes output depend on random iteration order",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if containsSortCall(p, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if desc := findEmit(p, rs); desc != "" {
					p.Reportf(rs.For, "range over map %s %s, but the function never sorts; collect the keys, sort them, then emit", types.ExprString(rs.X), desc)
				}
				return true
			})
		}
	}
}

// containsSortCall reports whether any call in the body resolves to a
// sort-shaped function.
func containsSortCall(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && strings.Contains(strings.ToLower(fn.Pkg().Path()), "sort") {
			found = true // package sort, internal/sortx, ...
		} else if strings.Contains(strings.ToLower(fn.Name()), "sort") {
			found = true
		}
		return !found
	})
	return found
}

// findEmit looks for an order-sensitive emission inside a map-range body
// and describes the first one found ("" when the loop is harmless —
// counting, set-building and map writes are order-insensitive).
func findEmit(p *Pass, rs *ast.RangeStmt) string {
	desc := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append to something that outlives the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin && len(call.Args) > 0 && isOuter(p, call.Args[0], rs) {
				desc = "appends to " + types.ExprString(call.Args[0])
			}
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil {
			return true
		}
		// fmt.Fprint* straight into a writer.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			desc = "writes via fmt." + fn.Name()
			return true
		}
		// Write/print-shaped method calls (w.Write, sb.WriteString,
		// r.printf, enc.Emit, ...).
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			name := strings.ToLower(fn.Name())
			for _, prefix := range []string{"write", "print", "fprint", "emit", "render"} {
				if strings.HasPrefix(name, prefix) {
					desc = "calls " + types.ExprString(call.Fun)
					return true
				}
			}
		}
		return true
	})
	return desc
}

// isOuter reports whether the expression refers to storage declared
// outside the range statement. Selectors and index expressions always
// reach outer structure; plain identifiers are resolved by declaration
// position.
func isOuter(p *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
