package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionInventory pins the committed LINT_SUPPRESSIONS.json
// against a fresh scan of the module: adding, moving, or re-justifying a
// suppression must show up as a reviewed diff to the inventory file (run
// `make lint-suppressions` to regenerate it). It also enforces the
// standing policy pins that used to live as ad-hoc CI greps: internal/gen
// carries no allochot suppressions (DESIGN.md §9), every inventoried
// check name exists in the catalog, and no suppression uses the blanket
// "all" outside example code.
func TestSuppressionInventory(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	sups := mod.Suppressions()

	var got bytes.Buffer
	if err := WriteSuppressionsJSON(&got, sups); err != nil {
		t.Fatalf("encoding inventory: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(root, "LINT_SUPPRESSIONS.json"))
	if err != nil {
		t.Fatalf("reading committed inventory: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("suppression inventory drifted from LINT_SUPPRESSIONS.json; regenerate with `make lint-suppressions` and review the diff\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}

	var again bytes.Buffer
	if err := WriteSuppressionsJSON(&again, mod.Suppressions()); err != nil {
		t.Fatalf("re-encoding inventory: %v", err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Errorf("inventory encoding is not byte-stable across scans")
	}

	catalog := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		catalog[a.Name] = true
	}
	for _, s := range sups {
		if s.Reason == "" {
			t.Errorf("%s:%d: suppression for %q has no reason", s.File, s.Line, s.Check)
		}
		if s.Check == "allochot" && strings.HasPrefix(s.File, "internal/gen/") {
			t.Errorf("%s:%d: internal/gen must pass allochot without suppressions (DESIGN.md §9)", s.File, s.Line)
		}
		if s.Check == "all" {
			if !strings.HasPrefix(s.File, "examples/") {
				t.Errorf("%s:%d: blanket //wearlint:ignore all is reserved for example code", s.File, s.Line)
			}
			continue
		}
		if !catalog[s.Check] {
			t.Errorf("%s:%d: suppression names unknown check %q — a typo here silences nothing", s.File, s.Line, s.Check)
		}
	}
}

// FuzzSuppressionInventory drives Module.Suppressions with arbitrary
// comment lines through the same oracle as FuzzIgnoreDirective, extended
// to the reason round-trip: a well-formed directive must appear in the
// inventory exactly once with its check and whitespace-normalised reason
// intact, anything else must not appear at all, and the JSON encoding
// must be byte-stable and decode back to the same inventory.
func FuzzSuppressionInventory(f *testing.F) {
	for _, s := range []string{
		"//wearlint:ignore walltime sim code stamps with simtime",
		"//wearlint:ignore all fixture",
		"//wearlint:ignore walltime",
		"//wearlint:ignorewalltime reason words",
		"//wearlint:ignore\twalltime\ttabbed reason",
		"//wearlint:ignore growbound   spaced   out   reason",
		"//wearlint:ignore retain é unicode reason",
		"// plain comment",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r\x00") {
			t.Skip("comment text is single-line by construction")
		}
		src := "package p\n\nvar x = 1 //" + line + "\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "p/p.go", src, parser.ParseComments)
		if err != nil || file == nil {
			t.Skip("input does not scan as a comment")
		}
		if len(file.Comments) != 1 || len(file.Comments[0].List) != 1 {
			t.Skip("input split into multiple comments")
		}
		text := file.Comments[0].List[0].Text

		mod := &Module{
			Root:  "",
			Name:  "p",
			Fset:  fset,
			Units: []*Unit{{Rel: "p", Name: "p", Files: []*ast.File{file}}},
		}
		sups := mod.Suppressions()

		wantCheck, wantReason, wantMal, wantDir := fuzzDirectiveOracle(text)
		if !wantDir || wantMal {
			if len(sups) != 0 {
				t.Fatalf("non-inventoriable %q produced %+v", text, sups)
			}
		} else {
			if len(sups) != 1 {
				t.Fatalf("directive %q: want 1 inventory entry, got %+v", text, sups)
			}
			s := sups[0]
			if s.Check != wantCheck || s.Reason != wantReason {
				t.Fatalf("directive %q inventoried as (%q, %q), want (%q, %q)", text, s.Check, s.Reason, wantCheck, wantReason)
			}
			if s.File != "p/p.go" || s.Line != 3 {
				t.Fatalf("directive %q placed at %s:%d, want p/p.go:3", text, s.File, s.Line)
			}
		}

		var a, b bytes.Buffer
		if err := WriteSuppressionsJSON(&a, sups); err != nil {
			t.Fatalf("encoding: %v", err)
		}
		if err := WriteSuppressionsJSON(&b, mod.Suppressions()); err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("encoding not byte-stable:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
		}
		var back []Suppression
		if err := json.Unmarshal(a.Bytes(), &back); err != nil {
			t.Fatalf("inventory JSON does not round-trip: %v\n%s", err, a.Bytes())
		}
		if len(back) != len(sups) {
			t.Fatalf("round-trip length %d, want %d", len(back), len(sups))
		}
		for i := range back {
			if back[i] != sups[i] {
				t.Fatalf("round-trip entry %d = %+v, want %+v", i, back[i], sups[i])
			}
		}
	})
}
