package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GrowboundAnalyzer flags the "load everything into a slice" habit on the
// study and decoder paths: an append or map-insert of a record-bearing
// value into state that outlives a record-iteration loop materialises the
// whole input — the memory blocker for the streaming study engine
// (ROADMAP item 1). The check is scoped to functions reachable from the
// study/decoder entry points (internal/core plus the proxylog/mme/udr
// codecs), so generators and test rigs that legitimately build record
// slices stay quiet.
//
// Approximation rules (DESIGN.md §5):
//
//   - Only values whose type transitively contains an internal/mnet
//     Record count: per-entity aggregates (counts, sets, histograms
//     keyed by subscriber) are bounded by the population, not the record
//     count, and pass — the "bounded accumulator" definition of
//     DESIGN.md §7.
//   - Fixed-slot writes (v[i] = e into slices and arrays) never flag:
//     own-indexed shard slots and fixed-size arrays do not grow.
//   - A slice reset to zero length inside the same loop (x = x[:0], or
//     append(x[:0], ...)) is scratch reuse, not growth.
//   - Bounded-by-input regrouping passes: when the loop ranges over a
//     slice or array parameter and the growth target is a local that no
//     return statement mentions, the function's residency is bounded by
//     its own input — on the streaming paths that input is one shard's
//     or one subscriber's records, never the whole log. Channel subjects
//     never qualify (a live tail is unbounded input), and locals that
//     escape through a return keep flagging: that is exactly the
//     materialise-and-hand-back habit the check exists to stop.
//   - internal/stats is exempt wholesale: its sketches and histograms
//     are the bounded accumulators the streaming engine will keep.
//   - The generator tree (internal/gen/...) is exempt: producers build
//     the record slices the study consumes; their output is the input
//     whose materialisation is the simulation itself, not a study-path
//     leak.
//   - Growth through a call boundary (passing the accumulator to a
//     helper that appends) is not tracked — the usual dataflow-layer
//     under-approximation.
var GrowboundAnalyzer = &Analyzer{
	Name:      "growbound",
	Doc:       "record loops on study/decoder paths must not grow record-bearing state that outlives the loop",
	RunModule: runGrowbound,
}

// growboundRootPkgs holds the entry-point packages: the study itself and
// the three log codecs. Reachability from their non-test functions
// defines the audited surface.
var growboundRootPkgs = []string{
	"internal/core",
	"internal/stream",
	"internal/mnet/proxylog",
	"internal/mnet/mme",
	"internal/mnet/udr",
}

// growboundExemptPkgs lists producer packages whose job is to build the
// record logs the study consumes; reachability may pull them in (the
// engine can stream straight from a generator source), but their appends
// are the dataset, not a study-path materialisation.
var growboundExemptPkgs = []string{"internal/gen/..."}

// growboundBoundedPkgs lists packages whose accumulators are bounded by
// construction (fixed-width sketches, capped histograms); see the
// bounded-accumulator definition in DESIGN.md §7.
var growboundBoundedPkgs = []string{"internal/stats"}

func runGrowbound(mp *ModulePass) {
	g, mod := mp.Graph, mp.Mod
	var roots []*Node
	for _, n := range g.FuncsIn(growboundRootPkgs) {
		if !n.Test {
			roots = append(roots, n)
		}
	}
	reach := g.ReachableFrom(roots)
	reported := map[string]bool{}
	g.Walk(func(n *Node) {
		if n.Decl == nil || n.Decl.Body == nil || n.Test || matchRel(n.Rel, growboundBoundedPkgs) ||
			matchRel(n.Rel, growboundExemptPkgs) {
			return
		}
		if !reach.Contains(n) {
			return
		}
		chain := pathSteps(mod, reach.PathTo(n))
		growboundFunc(mp, n, chain, reported)
	})
}

// growboundFunc scans one reachable function body for record loops and
// flags qualifying growth writes inside them.
func growboundFunc(mp *ModulePass, n *Node, chain []PathStep, reported map[string]bool) {
	pass, mod := n.Pass, mp.Mod
	du := mod.FuncDefUse(pass, n.Decl.Type, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		loop, body := recordLoop(pass, mod, nd)
		if loop == nil {
			return true
		}
		resets := resetObjects(pass, body)
		ast.Inspect(body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				growboundAssign(mp, n, du, loop, resets, as, as.Lhs[i], as.Rhs[i], chain, reported)
			}
			return true
		})
		return true // nested record loops report at their own sites; positions dedupe
	})
}

// growboundAssign judges one assignment inside a record loop.
func growboundAssign(mp *ModulePass, n *Node, du *DefUse, loop ast.Stmt, resets map[types.Object]bool,
	as *ast.AssignStmt, lhs, rhs ast.Expr, chain []PathStep, reported map[string]bool) {

	pass, mod := n.Pass, mp.Mod
	var stored types.Type
	var kind string
	switch {
	case isAppendTo(pass, lhs, rhs):
		if resetAppend(pass, rhs) {
			return // append(x[:0], ...): scratch reuse, not growth
		}
		t := pass.TypeOf(lhs)
		if t == nil {
			return
		}
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return
		}
		stored, kind = sl.Elem(), "append"
	default:
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return
		}
		t := pass.TypeOf(ix.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return // fixed-slot slice/array store: does not grow
		}
		stored, kind = pass.TypeOf(lhs), "map insert"
	}
	if stored == nil || !containsRecordType(mod, stored) {
		return // bounded accumulator: value carries no records (DESIGN.md §7)
	}
	obj := rootObject(pass, lhs)
	if obj == nil || resets[obj] {
		return
	}
	if du.ClassOf(obj) == ClassLocal && obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
		return // per-iteration state dies with the loop
	}
	if boundedRegroup(pass, du, loop, n.Decl.Body, obj) {
		return // regroup of a parameter slice into a non-escaping local
	}
	key := mod.Fset.Position(as.Pos()).String()
	if reported[key] {
		return
	}
	reported[key] = true
	where := ""
	if len(chain) > 0 {
		where = " (reached via " + renderSteps(chain) + " → " + n.DisplayName(mod) + ")"
	}
	mp.Reportf(as.Pos(), chain,
		"unbounded growth: %s into %s inside a record loop materialises record-bearing state that outlives the loop%s; stream per record or use a bounded accumulator (DESIGN.md §7)",
		kind, types.ExprString(lhs), where)
}

// boundedRegroup reports whether a growth write is the bounded-by-input
// regroup shape: the record loop ranges over a slice or array parameter,
// the target is a local declared in the function body, and no return
// statement mentions that local. Such a function's peak residency is a
// constant factor of its own input — on the streaming paths the input is
// one shard's or one subscriber's records — and the regrouped state dies
// when the call returns. A channel subject never qualifies (a tail is
// unbounded input), and a returned local is the materialise-and-hand-back
// habit the check targets, so both keep flagging.
func boundedRegroup(pass *Pass, du *DefUse, loop ast.Stmt, fnBody *ast.BlockStmt, obj types.Object) bool {
	rs, ok := loop.(*ast.RangeStmt)
	if !ok {
		return false
	}
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
	default:
		return false // channels (and maps of records) are not bounded inputs
	}
	subj := rootObject(pass, rs.X)
	if subj == nil || du.ClassOf(subj) != ClassParam {
		return false
	}
	if du.ClassOf(obj) != ClassLocal {
		return false
	}
	return !usedInReturns(pass, fnBody, obj)
}

// usedInReturns reports whether any return statement in body (including
// inside nested function literals) mentions obj.
func usedInReturns(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if found {
			return false
		}
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if ok && pass.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// recordLoop reports whether nd is a record-iteration loop: a range over
// records (slice, array or channel of an internal/mnet Record type), or a
// for loop whose body directly defines a Record-typed variable (the
// `for { rec, err := dec.Decode() }` decoder idiom).
func recordLoop(pass *Pass, mod *Module, nd ast.Node) (ast.Stmt, *ast.BlockStmt) {
	switch nd := nd.(type) {
	case *ast.RangeStmt:
		t := pass.TypeOf(nd.X)
		if t == nil {
			return nil, nil
		}
		var elem types.Type
		switch u := t.Underlying().(type) {
		case *types.Slice:
			elem = u.Elem()
		case *types.Array:
			elem = u.Elem()
		case *types.Chan:
			elem = u.Elem()
		}
		if elem != nil && isRecordType(mod, elem) {
			return nd, nd.Body
		}
	case *ast.ForStmt:
		if definesRecordVar(pass, mod, nd.Body) {
			return nd, nd.Body
		}
	}
	return nil, nil
}

// definesRecordVar reports whether the loop body itself (not a nested
// loop or literal) defines a Record-typed variable.
func definesRecordVar(pass *Pass, mod *Module, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // nested scopes classify on their own
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && isRecordType(mod, obj.Type()) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isRecordType matches the module's log record types: a named type
// called Record declared under internal/mnet.
func isRecordType(mod *Module, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "Record" && obj.Pkg() != nil &&
		strings.HasPrefix(obj.Pkg().Path(), mod.Name+"/internal/mnet")
}

// containsRecordType reports whether t transitively contains a record
// type through struct fields, slices, arrays, maps and pointers.
func containsRecordType(mod *Module, t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type, depth int) bool
	walk = func(t types.Type, depth int) bool {
		if t == nil || depth > 8 || seen[t] {
			return false
		}
		seen[t] = true
		if isRecordType(mod, t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			return walk(u.Elem(), depth+1)
		case *types.Slice:
			return walk(u.Elem(), depth+1)
		case *types.Array:
			return walk(u.Elem(), depth+1)
		case *types.Map:
			return walk(u.Key(), depth+1) || walk(u.Elem(), depth+1)
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type(), depth+1) {
					return true
				}
			}
		}
		return false
	}
	return walk(t, 0)
}

// resetObjects collects slice variables reset to zero length (x = x[:0])
// anywhere in the loop body: the scratch-reuse idiom.
func resetObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			se, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr)
			if !ok || !isZeroConst(pass, se.High) {
				continue
			}
			lo := rootObject(pass, lhs)
			if lo != nil && lo == rootObject(pass, se.X) {
				out[lo] = true
			}
		}
		return true
	})
	return out
}

// resetAppend matches append(x[:0], ...): growth into a buffer the
// caller resets first.
func resetAppend(pass *Pass, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	return ok && isZeroConst(pass, se.High)
}

// isZeroConst reports whether e is the integer constant 0.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
