package analysis

import (
	"go/ast"
	"go/types"
)

// WaitgroupAnalyzer catches the two classic sync.WaitGroup mistakes:
//
//   - wg.Add called inside the goroutine it is meant to guard — the
//     spawner can reach wg.Wait before the goroutine runs Add, so Wait
//     returns early (a race the race detector only sees when the
//     interleaving actually happens);
//   - a goroutine spawned after wg.Add whose body never calls wg.Done —
//     Wait blocks forever.
var WaitgroupAnalyzer = &Analyzer{
	Name: "waitgroup",
	Doc:  "wg.Add inside the spawned goroutine, or a guarded goroutine body with no wg.Done",
	Run:  runWaitgroup,
}

func runWaitgroup(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					reportAddInsideGo(p, lit)
				}
			case *ast.BlockStmt:
				scanBlock(p, n)
			}
			return true
		})
	}
}

// reportAddInsideGo flags wg.Add calls within a goroutine body.
func reportAddInsideGo(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		// A nested go statement starts its own goroutine; its body is
		// inspected when the walk reaches it.
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, name, ok := wgMethod(p, call); ok && name == "Add" {
				p.Reportf(call.Pos(), "%s.Add runs inside the goroutine it guards; the spawner can reach Wait first — call Add before the go statement", recv)
			}
		}
		return true
	})
}

// scanBlock walks one statement list in order, tracking WaitGroups with a
// pending Add and flagging later goroutines whose bodies lack a matching
// Done.
func scanBlock(p *Pass, block *ast.BlockStmt) {
	pending := map[string]bool{}
	for _, stmt := range block.List {
		if gs, ok := stmt.(*ast.GoStmt); ok {
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok || len(pending) == 0 {
				continue
			}
			for recv := range pending {
				if !callsOn(p, lit.Body, recv, "Done") {
					p.Reportf(gs.Pos(), "goroutine spawned after %s.Add never calls %s.Done; Wait will block forever (move an unrelated spawn above the Add, or add the Done)", recv, recv)
				}
			}
			continue
		}
		// Outside go statements, look for Add/Wait at this nesting level
		// (not inside function literals, which run elsewhere).
		walkStmtShallow(stmt, func(call *ast.CallExpr) {
			recv, name, ok := wgMethod(p, call)
			if !ok {
				return
			}
			switch name {
			case "Add":
				pending[recv] = true
			case "Wait":
				delete(pending, recv)
			}
		})
	}
}

// walkStmtShallow visits calls in a statement without descending into
// function literals.
func walkStmtShallow(stmt ast.Stmt, fn func(*ast.CallExpr)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// callsOn reports whether body contains recv.method(...), matching the
// receiver textually (p.wg and wg are distinct, as they should be).
func callsOn(p *Pass, body *ast.BlockStmt, recv, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r, name, ok := wgMethod(p, call); ok && name == method && r == recv {
			found = true
		}
		return !found
	})
	return found
}

// wgMethod matches a call to a sync.WaitGroup method, returning the
// receiver expression text and the method name.
func wgMethod(p *Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	fn, fnOK := p.ObjectOf(sel.Sel).(*types.Func)
	if !fnOK {
		return "", "", false
	}
	sig, sigOK := fn.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if t.String() != "sync.WaitGroup" {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}
