package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrdropAnalyzer generalizes closecheck from writer teardown to every
// error-returning call in internal/ and cmd/ whose result is discarded
// — the Study.planCost bug class from PR 4, where a computed error was
// dropped on the floor and a broken plan-cost table shipped silently.
// A call used as a bare statement (or deferred) whose callee returns an
// error is flagged; `_ = f()` is the explicit, greppable opt-out, with
// //wearlint:ignore errdrop for statements that cannot take one.
//
// Exemptions, all cases where the error is either unobtainable noise or
// surfaces later through a checked path:
//   - the fmt print family (Print/Printf/Println/Fprint*/...), whose
//     errors re-surface at the destination's Close/Flush — itself
//     guarded by closecheck;
//   - methods on strings.Builder, bytes.Buffer and hash.Hash, which are
//     documented never to return a non-nil error;
//   - Close/Flush on read-only files opened in the same body and on
//     network transports, closecheck's own exemptions (closecheck still
//     owns the writer-path diagnostics; Module.Run dedupes the overlap
//     by position so a dropped writer Close reports exactly once).
var ErrdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error result in internal/ or cmd/; handle it or assign to _",
	Run:  runErrdrop,
}

// errdropRel scopes the check to first-party pipeline and command code.
var errdropRel = []string{"internal/...", "cmd/..."}

func runErrdrop(p *Pass) {
	if !matchRel(p.Rel, errdropRel) {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					errdropBody(p, n.Body)
				}
			case *ast.FuncLit:
				errdropBody(p, n.Body)
			}
			return true
		})
	}
}

// errdropBody flags discarded error results in one function body,
// leaving nested literals to their own visit.
func errdropBody(p *Pass, body *ast.BlockStmt) {
	readOnly := openedReadOnly(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
		}
		if call == nil {
			return true
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		t := p.TypeOf(call.Fun)
		if t == nil {
			return true
		}
		sig, ok := t.Underlying().(*types.Signature)
		if !ok || !resultsContainError(sig.Results()) {
			return true
		}
		if errdropExempt(p, call, readOnly) {
			return true
		}
		p.Reportf(call.Pos(),
			"error result of %s is discarded; handle it, or assign to _ (with //wearlint:ignore errdrop where a statement cannot) to opt out",
			types.ExprString(call.Fun))
		return true
	})
}

// errdropExempt applies the documented exemption classes to one call.
func errdropExempt(p *Pass, call *ast.CallExpr, readOnly map[string]bool) bool {
	fn := p.calleeFunc(call)
	if fn == nil {
		return false // func-value call: no callee identity to exempt on
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	switch recv.String() {
	case "strings.Builder", "bytes.Buffer", "hash.Hash":
		return true
	}
	if fn.Name() == "Close" || fn.Name() == "Flush" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if rt := p.TypeOf(sel.X); rt != nil && isTransport(rt) {
				return true
			}
			if readOnly[types.ExprString(sel.X)] {
				return true
			}
		}
	}
	return false
}
