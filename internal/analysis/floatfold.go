package analysis

import (
	"go/types"
)

// FloatfoldAnalyzer flags non-associative float folds that can smear
// bits across runs, the bug class fixed twice already (the PR 1
// map-order family, Mobility.MeanDailyMaxKm in PR 4):
//
//   - part A, module-wide: a float += (or x = x + e spelling) whose
//     accumulator outlives a `range` over a map folds in randomized
//     iteration order — every run can produce different low bits.
//   - part B, parallel paths: a float accumulation into state that
//     outlives one invocation (a receiver field, package variable or
//     closure capture) inside a shard callback — or in any function the
//     call graph reaches from one — folds in whatever order the workers
//     interleave; DESIGN.md §7 keeps non-associative folds sequential
//     in canonical order, so such a fold must either move after the
//     merge barrier or be documented in the sequential-canonical set
//     below. Invocation-local accumulators are exempt by construction:
//     their fold order is fixed by the function's own input, parallel
//     or not. (A write that reaches shared memory through a local
//     pointer is judged by the pointer's class — the one place this
//     check under-approximates; DESIGN.md §5 records it.)
//
// The canonical set is compiled in and auditable: packages and
// functions whose float folds are documented to consume already
// canonically ordered input (sorted samples, fixed per-user record
// order), so their sums are bit-stable given bit-stable input.
var FloatfoldAnalyzer = &Analyzer{
	Name:      "floatfold",
	Doc:       "float accumulation over map ranges or on parallel-reachable paths is a non-associative fold",
	RunModule: runFloatfold,
}

// floatfoldCanonicalPkgs lists packages exempt from the parallel-path
// rule. internal/stats folds operate on explicitly ordered inputs — the
// callers sort samples or iterate fixed-order slices — which DESIGN.md
// §5 documents as the sequential-canonical contract for that package.
var floatfoldCanonicalPkgs = []string{"internal/stats"}

// floatfoldCanonicalFuncs lists individual functions exempt from the
// parallel-path rule, by display name. Each entry must be justified in
// DESIGN.md §5.
var floatfoldCanonicalFuncs = map[string]bool{}

func runFloatfold(mp *ModulePass) {
	g := mp.Graph
	mod := mp.Mod
	reported := map[string]bool{}

	report := func(w *VarWrite, chain []PathStep, format string, args ...any) {
		key := mod.Fset.Position(w.Pos).String()
		if reported[key] {
			return
		}
		reported[key] = true
		mp.Reportf(w.Pos, chain, format, args...)
	}

	canonical := func(n *Node) bool {
		return matchRel(n.Rel, floatfoldCanonicalPkgs) || floatfoldCanonicalFuncs[n.DisplayName(mod)]
	}

	// Part A: float folds over map ranges, module-wide. Nested literal
	// bodies are part of the enclosing declaration's summary, so callbacks
	// are covered here too.
	g.Walk(func(n *Node) {
		if n.Decl == nil || n.Decl.Body == nil || n.Test || canonical(n) {
			return
		}
		du := mod.FuncDefUse(n.Pass, n.Decl.Type, n.Decl.Body)
		for i := range du.Writes {
			w := &du.Writes[i]
			if !w.FloatAccum || !w.InMapRange || w.Obj == nil {
				continue
			}
			// A target declared inside the range statement resets every
			// iteration: no cross-iteration fold, no order dependence.
			if du.ClassOf(w.Obj) == ClassLocal &&
				w.Obj.Pos() >= w.RangeStmt.Pos() && w.Obj.Pos() < w.RangeStmt.End() {
				continue
			}
			report(w, nil,
				"non-associative float fold: %s accumulates in a range over map %s, whose iteration order is randomized per run; iterate sortx.Keys (or sort before folding) so the sum order is canonical (DESIGN.md §7)",
				types.ExprString(w.Target), types.ExprString(w.RangeSrc))
		}
	})

	// Part B: float accumulation on parallel paths. Roots are the shard
	// callbacks themselves plus, for literal callbacks (which are not
	// graph nodes), every function the literal's body calls — recovered
	// from the enclosing node's out-edges by position.
	flagBody := func(du *DefUse, chain []PathStep, where string) {
		for i := range du.Writes {
			w := &du.Writes[i]
			if !w.FloatAccum || w.InMapRange {
				continue // map-range folds already carry part A's diagnostic
			}
			if w.Obj == nil || du.ClassOf(w.Obj) != ClassCaptured {
				continue // invocation-local fold: order fixed by the input
			}
			report(w, chain,
				"float accumulation into %s inside %s, which runs on shard workers (%s); non-associative folds stay sequential in canonical order — fold after the merge barrier or document the site in floatfold's sequential-canonical set (DESIGN.md §7)",
				types.ExprString(w.Target), where, renderSteps(chain))
		}
	}

	var roots []*Node
	rootChain := map[*Node][]PathStep{}
	addRoot := func(n *Node, chain []PathStep) {
		if n == nil || n.Decl == nil || n.Decl.Body == nil {
			return
		}
		if _, ok := rootChain[n]; ok {
			return // first registration chain wins; order is deterministic
		}
		rootChain[n] = chain
		roots = append(roots, n)
	}

	for _, cb := range shardCallbacks(mp) {
		if cb.node != nil {
			addRoot(cb.node, cb.chain)
			continue
		}
		// Literal callback: flag its own body, then seed the BFS with the
		// functions it calls.
		if !canonical(cb.encl) {
			flagBody(mod.FuncDefUse(cb.pass, cb.ft, cb.body), cb.chain, cb.name)
		}
		for _, e := range cb.encl.Out {
			if e.Pos < cb.body.Pos() || e.Pos >= cb.body.End() {
				continue
			}
			step := PathStep{Func: cb.encl.DisplayName(mod), Pos: mod.Fset.Position(e.Pos)}
			addRoot(e.Callee, append(append([]PathStep(nil), cb.chain...), step))
		}
	}

	reach := g.ReachableFrom(roots)
	g.Walk(func(n *Node) {
		if n.Decl == nil || n.Decl.Body == nil || n.Test || canonical(n) {
			return
		}
		if !reach.Contains(n) {
			return
		}
		path := reach.PathTo(n)
		root := n
		if len(path) > 0 {
			root = path[0].Caller
		}
		chain := append(append([]PathStep(nil), rootChain[root]...), pathSteps(mod, path)...)
		flagBody(mod.FuncDefUse(n.Pass, n.Decl.Type, n.Decl.Body), chain, n.DisplayName(mod))
	})
}
