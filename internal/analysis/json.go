package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable diagnostics for CI: one JSON array, fields in fixed
// struct order, paths module-relative with forward slashes, diagnostics
// already position-sorted by Run — so the bytes are identical run to run
// and suitable for problem-matchers and artifact diffing.

type jsonDiagnostic struct {
	Check   string     `json:"check"`
	File    string     `json:"file"`
	Line    int        `json:"line"`
	Col     int        `json:"col"`
	Message string     `json:"message"`
	Path    []jsonStep `json:"path,omitempty"`
}

type jsonStep struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// WriteJSON emits diagnostics as indented JSON. root, when non-empty,
// is stripped from filenames so output is machine-relative, not
// checkout-relative.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiagnostic{
			Check:   d.Check,
			File:    relSlash(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
		}
		for _, step := range d.Path {
			jd.Path = append(jd.Path, jsonStep{
				Func: step.Func,
				File: relSlash(root, step.Pos.Filename),
				Line: step.Pos.Line,
				Col:  step.Pos.Column,
			})
		}
		out = append(out, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relSlash renders a filename relative to root with forward slashes.
func relSlash(root, name string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}
