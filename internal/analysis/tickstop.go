package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TickstopAnalyzer enforces the timer-lifecycle invariant of the
// collection tier: a time.Ticker or time.Timer created in a function
// must be stopped on every exit path, or its runtime timer outlives the
// work it paced — under connection churn the drain/dial helpers mint one
// per call, and unstopped timers are a slow leak the load-tested proxy
// tier (ROADMAP item 3) cannot afford. time.Tick and time.After inside a
// loop are flagged outright: each iteration allocates a timer nothing
// can ever stop.
//
// Approximation rules (DESIGN.md §5):
//
//   - defer t.Stop() — directly or inside a deferred literal — is the
//     sanctioned discipline and clears every exit path at once.
//   - With only a plain t.Stop(), any return statement textually between
//     the creation and the first Stop is an escaping exit path and
//     flags; returns after a Stop pass. This is the same textual
//     discipline lockheld uses — branches can cheat it both ways, and
//     the remediation (defer the Stop) removes the ambiguity.
//   - A timer whose lifecycle is handed off is skipped, reusing the
//     escape layer's terminal-site classes: returned, stored into a
//     field/map/slice/composite, sent on a channel, passed as a call
//     argument, aliased to another variable, or captured by any function
//     literal (a deferred or spawned closure may own the Stop). The
//     under-approximation is deliberate — the owner's function is judged
//     where the handoff lands.
//   - Function literals are judged as their own bodies: a timer created
//     inside a closure needs its Stop (or defer) inside that closure.
//   - Test files are exempt: t.Cleanup and test-scoped leaks are the
//     harness's business.
var TickstopAnalyzer = &Analyzer{
	Name: "tickstop",
	Doc:  "time.Ticker/time.Timer must be stopped on all exit paths; time.Tick/time.After in a loop leak a timer per iteration",
	Run:  runTickstop,
}

func runTickstop(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					tickstopBody(p, n.Body)
				}
			case *ast.FuncLit:
				tickstopBody(p, n.Body)
			}
			return true
		})
	}
}

// timerMake holds one tracked time.NewTimer/NewTicker creation.
type timerMake struct {
	obj  types.Object
	pos  token.Pos
	kind string // "Timer" or "Ticker"
}

// tickstopBody judges one function body. Nested function literals are
// excluded from the statement scan — they are judged as their own
// bodies — but included in the handoff scan: a capture is a handoff.
func tickstopBody(p *Pass, body *ast.BlockStmt) {
	var makes []timerMake
	tickstopScan(p, body, func(as ast.Node, lhs ast.Expr, rhs ast.Expr) {
		kind := timerCtor(p, rhs)
		if kind == "" {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.ObjectOf(id)
		if obj == nil {
			return
		}
		makes = append(makes, timerMake{obj: obj, pos: as.Pos(), kind: kind})
	})
	tickstopLoopCtors(p, body)
	for _, m := range makes {
		tickstopJudge(p, body, m)
	}
}

// tickstopScan walks the body's own statements (not nested literals) and
// reports each single-variable assignment or declaration to emit.
func tickstopScan(p *Pass, body *ast.BlockStmt, emit func(at ast.Node, lhs, rhs ast.Expr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					emit(n, n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					emit(n, n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

// timerCtor matches time.NewTimer/time.NewTicker and names the produced
// kind.
func timerCtor(p *Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := timePkgFunc(p, call)
	if fn == nil {
		return ""
	}
	switch fn.Name() {
	case "NewTimer", "AfterFunc":
		if fn.Name() == "AfterFunc" {
			return "" // owns a goroutine; goleak territory, not lifecycle
		}
		return "Timer"
	case "NewTicker":
		return "Ticker"
	}
	return ""
}

// timePkgFunc resolves a call to a package-level function of package
// time, or nil. The receiver check matters: time.Time.After and friends
// are methods that share names with the package functions.
func timePkgFunc(p *Pass, call *ast.CallExpr) *types.Func {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// tickstopLoopCtors flags time.Tick and time.After calls inside any
// for/range loop in the body: one unstoppable runtime timer per
// iteration.
func tickstopLoopCtors(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // judged as its own body
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(inner ast.Node) bool {
			if _, ok := inner.(*ast.FuncLit); ok {
				return false
			}
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := timePkgFunc(p, call)
			if fn == nil {
				return true
			}
			if name := fn.Name(); name == "Tick" || name == "After" {
				p.Reportf(call.Pos(),
					"time.%s inside a loop leaks one unstoppable timer per iteration; hoist a time.NewTicker/NewTimer out of the loop and defer its Stop (DESIGN.md §5)",
					name)
			}
			return true
		})
		return true // nested loops re-scan; the per-call positions dedupe visually
	})
}

// tickstopJudge applies the exit-path discipline to one tracked timer.
func tickstopJudge(p *Pass, body *ast.BlockStmt, m timerMake) {
	if timerDeferStop(p, body, m.obj) {
		return
	}
	if timerHandoff(p, body, m) {
		return // lifecycle handed off; judged where it lands (DESIGN.md §5)
	}
	stops := timerStops(p, body, m.obj)
	if len(stops) == 0 {
		p.Reportf(m.pos,
			"time.%s is never stopped: no Stop on any exit path; defer %s.Stop() right after the New%s (DESIGN.md §5)",
			m.kind, m.obj.Name(), m.kind)
		return
	}
	firstStop := stops[0]
	for _, s := range stops {
		if s < firstStop {
			firstStop = s
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > m.pos && ret.Pos() < firstStop {
			p.Reportf(ret.Pos(),
				"time.%s %s leaks on this return path: created before it, stopped only after; defer %s.Stop() instead of a plain Stop (DESIGN.md §5)",
				m.kind, m.obj.Name(), m.obj.Name())
		}
		return true
	})
}

// timerStops collects the positions of plain (non-deferred) obj.Stop()
// calls in the body's own statements, in source order.
func timerStops(p *Pass, body *ast.BlockStmt, obj types.Object) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if isStopCall(p, n, obj) {
				out = append(out, n.Pos())
			}
		}
		return true
	})
	return out
}

// timerDeferStop reports whether the body defers obj.Stop(), directly or
// inside a deferred function literal.
func timerDeferStop(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isStopCall(p, ds.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if call, ok := inner.(*ast.CallExpr); ok && isStopCall(p, call, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isStopCall matches obj.Stop().
func isStopCall(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && p.ObjectOf(id) == obj
}

// timerHandoff reports whether the timer's lifecycle leaves the body:
// returned, stored into a composite/field/map/slice, sent on a channel,
// passed as a call argument, aliased to another variable, or captured by
// a nested function literal. The classes mirror the escape layer's
// terminal sites (EscReturn, EscField, EscChan, ...) — a handed-off
// timer is judged where the handoff lands.
func timerHandoff(p *Pass, body *ast.BlockStmt, m timerMake) bool {
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == m.obj {
				found = true
			}
			return !found
		})
		return found
	}
	handoff := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handoff {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentions(res) {
					handoff = true
				}
			}
		case *ast.SendStmt:
			if mentions(n.Value) {
				handoff = true
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if mentions(elt) {
					handoff = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if mentions(arg) {
					handoff = true
				}
			}
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) && n.Pos() != m.pos && mentions(n.Rhs[i]) {
					handoff = true // alias or store: y := t, s.t = t, m[k] = t
				}
			}
		case *ast.FuncLit:
			// A capture hands the lifecycle to the closure (a deferred
			// closure Stop is recognised earlier, before this scan).
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && p.ObjectOf(id) == m.obj {
					handoff = true
				}
				return !handoff
			})
			return false
		}
		return !handoff
	})
	return handoff
}
