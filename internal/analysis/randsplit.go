package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RandsplitAnalyzer enforces RNG-stream independence — the property a
// parallel generator's reproducibility rests on (ROADMAP item 2): every
// subscriber's randx stream must be derived by Split from stable
// identity, never shared between goroutines or keyed by iteration
// order. Four rules:
//
//   - A shard callback must not draw from a captured *randx.Rand:
//     workers would interleave on one stream and the schedule would
//     decide every sample. Split — which never advances the parent — is
//     the sanctioned way to derive per-shard streams and stays silent.
//   - A *randx.Rand value must not flow into more than one go
//     statement, nor into a goroutine spawned inside a loop: two
//     goroutines drawing from one stream race the stream state.
//     Handing each goroutine its own Split child (go f(r.Split(...)))
//     is the sanctioned spelling and does not count as a flow of r.
//   - Once a Split child is handed to another goroutine, the parent is
//     split-only: later draws make the parent's stream position depend
//     on code order around the fan-out instead of the key discipline.
//   - On paths reachable from the generator (internal/gen roots), Split
//     labels must be constants and Split keys must derive from stable
//     identity — IMSI, parameters, constants, simulation-time
//     coordinates (simtime.Day/Week) — never from a for-loop counter or
//     a range variable, whose values depend on iteration order and
//     resharding. Diagnostics carry the call chain from the root.
//
// Approximation rules (DESIGN.md §5): captured draws are matched
// syntactically in the callback body (draws inside callees of the
// callback are the call graph's attribution, not this check's); the key
// rule inspects the key expression's identifiers only, so a local
// laundered from a counter passes — the byte-identity gates are the
// backstop, and the rule's value is forcing the stable-identity
// derivation to be spelled at the Split site.
var RandsplitAnalyzer = &Analyzer{
	Name:      "randsplit",
	Doc:       "randx streams must stay goroutine-private and Split keys must derive from stable identity",
	RunModule: runRandsplit,
}

// randsplitRootPkgs scopes the key-discipline rule to generator paths.
var randsplitRootPkgs = []string{"internal/gen/..."}

// isRandType matches *randx.Rand / randx.Rand across type-check
// universes.
func isRandType(mod *Module, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Rand" && n.Obj().Pkg().Path() == mod.Name+"/internal/randx"
}

// isStableTimeType matches the simulation-time coordinates simtime.Day
// and simtime.Week: per-day and per-week identities, not iteration
// order.
func isStableTimeType(mod *Module, t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != mod.Name+"/internal/simtime" {
		return false
	}
	return n.Obj().Name() == "Day" || n.Obj().Name() == "Week"
}

// randSplitCall matches a call to (*randx.Rand).Split, returning the
// receiver expression.
func randSplitCall(p *Pass, mod *Module, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Split" {
		return nil, false
	}
	if !isRandType(mod, p.TypeOf(sel.X)) {
		return nil, false
	}
	return sel.X, true
}

// randDrawCall matches a state-advancing method call on a rand value
// (any method but Split), returning the receiver expression and method
// name.
func randDrawCall(p *Pass, mod *Module, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name == "Split" {
		return nil, "", false
	}
	if !isRandType(mod, p.TypeOf(sel.X)) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

func runRandsplit(mp *ModulePass) {
	reported := map[string]bool{}
	randsplitShardCaptures(mp, reported)
	mp.Graph.Walk(func(n *Node) {
		if n.Decl == nil || n.Decl.Body == nil || n.Test || !n.InModule {
			return
		}
		randsplitGoFlow(mp, n, reported)
	})
	randsplitKeyDiscipline(mp, reported)
}

func (mp *ModulePass) reportOnce(reported map[string]bool, pos token.Pos, path []PathStep, format string, args ...any) {
	key := mp.Mod.Fset.Position(pos).String() + "#" + mp.check
	if reported[key] {
		return
	}
	reported[key] = true
	mp.Reportf(pos, path, format, args...)
}

// randsplitShardCaptures flags draws from a captured rand inside shard
// callbacks (rule one).
func randsplitShardCaptures(mp *ModulePass, reported map[string]bool) {
	mod := mp.Mod
	for _, cb := range shardCallbacks(mp) {
		du := newDefUse(cb.pass, cb.ft, cb.body)
		ast.Inspect(cb.body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := randDrawCall(cb.pass, mod, call)
			if !ok {
				return true
			}
			root := rootObject(cb.pass, recv)
			if root == nil || du.ClassOf(root) != ClassCaptured {
				return true
			}
			mp.reportOnce(reported, call.Pos(), cb.chain,
				"rng capture: shard callback %s draws %s from captured *randx.Rand %s, interleaving every worker on one stream (registered via %s); derive a per-shard child with Split outside the callback",
				cb.name, method, types.ExprString(recv), renderSteps(cb.chain))
			return true
		})
	}
}

// randsplitGoFlow applies the go-statement rules to one function body:
// a rand flowing into two go statements or into a loop-spawned
// goroutine, and draws on a parent after a Split child was handed off.
func randsplitGoFlow(mp *ModulePass, n *Node, reported map[string]bool) {
	mod, pass, body := mp.Mod, n.Pass, n.Decl.Body

	var loops []ast.Node
	var gos []*ast.GoStmt
	children := map[types.Object]types.Object{} // Split-child local → parent
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, nd)
		case *ast.GoStmt:
			gos = append(gos, nd)
		case *ast.AssignStmt:
			if len(nd.Lhs) != len(nd.Rhs) {
				return true
			}
			for i, lhs := range nd.Lhs {
				call, ok := ast.Unparen(nd.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				recv, ok := randSplitCall(pass, mod, call)
				if !ok {
					continue
				}
				parent := rootObject(pass, recv)
				child := rootObject(pass, lhs)
				if parent != nil && child != nil {
					children[child] = parent
				}
			}
		}
		return true
	})
	if len(gos) == 0 {
		return
	}

	// handoff is the earliest go statement that received a Split child
	// of each parent.
	handoff := map[types.Object]token.Pos{}
	seenIn := map[types.Object]int{} // rand object → go statements it flowed into
	for _, g := range gos {
		refs := randGoRefs(pass, mod, g)
		for _, ref := range refs {
			obj, pos := ref.obj, ref.pos
			// Declared inside the go subtree (the goroutine's own state)
			// never counts.
			if obj.Pos() >= g.Pos() && obj.Pos() < g.End() {
				continue
			}
			if parent := children[obj]; parent != nil {
				// A Split child handed off: sanctioned, but arms the
				// split-only rule for its parent.
				if _, ok := handoff[parent]; !ok {
					handoff[parent] = g.Pos()
				}
				continue
			}
			seenIn[obj]++
			if seenIn[obj] > 1 {
				mp.reportOnce(reported, pos, nil,
					"rng fan-out: *randx.Rand %s flows into more than one go statement; goroutines drawing from one stream race its state — hand each goroutine its own Split child (go f(r.Split(label, id)))",
					obj.Name())
				continue
			}
			for _, loop := range loops {
				if g.Pos() >= loop.Pos() && g.Pos() < loop.End() &&
					!(obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()) {
					mp.reportOnce(reported, pos, nil,
						"rng fan-out: *randx.Rand %s is captured by a goroutine spawned inside a loop, sharing one stream across every iteration's goroutine; hand each iteration its own Split child",
						obj.Name())
					break
				}
			}
		}
		// A Split call spelled directly inside the go statement also
		// hands a child off.
		ast.Inspect(g, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, ok := randSplitCall(pass, mod, call)
			if !ok {
				return true
			}
			if parent := rootObject(pass, recv); parent != nil {
				if _, ok := handoff[parent]; !ok {
					handoff[parent] = g.Pos()
				}
			}
			return true
		})
	}
	if len(handoff) == 0 {
		return
	}

	// Split-only after fan-out: draws on a parent past its first
	// handoff flag.
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := randDrawCall(pass, mod, call)
		if !ok {
			return true
		}
		root := rootObject(pass, recv)
		if root == nil {
			return true
		}
		pos, armed := handoff[root]
		if !armed || call.Pos() <= pos {
			return true
		}
		mp.reportOnce(reported, call.Pos(), nil,
			"rng order: parent stream %s is drawn from (%s) after a Split child was handed to another goroutine; a fanned-out parent is split-only — draw before the fan-out or derive another child",
			root.Name(), method)
		return true
	})
}

// randRef is one rand-typed identifier occurrence.
type randRef struct {
	obj types.Object
	pos token.Pos
}

// randGoRefs collects the rand-typed variables a go statement captures,
// in source order, excluding receivers of Split calls (the sanctioned
// hand-a-child spelling) and duplicate mentions.
func randGoRefs(pass *Pass, mod *Module, g *ast.GoStmt) []randRef {
	excluded := map[*ast.Ident]bool{}
	ast.Inspect(g, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := randSplitCall(pass, mod, call)
		if !ok {
			return true
		}
		ast.Inspect(recv, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok {
				excluded[id] = true
			}
			return true
		})
		return true
	})
	var out []randRef
	seen := map[types.Object]bool{}
	ast.Inspect(g, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || excluded[id] {
			return true
		}
		obj := pass.ObjectOf(id)
		v, isVar := obj.(*types.Var)
		if !isVar || !isRandType(mod, v.Type()) || seen[obj] {
			return true
		}
		seen[obj] = true
		out = append(out, randRef{obj: obj, pos: id.Pos()})
		return true
	})
	return out
}

// randsplitKeyDiscipline applies the Split-key rule over every function
// reachable from the generator roots.
func randsplitKeyDiscipline(mp *ModulePass, reported map[string]bool) {
	g, mod := mp.Graph, mp.Mod
	var roots []*Node
	for _, n := range g.FuncsIn(randsplitRootPkgs) {
		if !n.Test {
			roots = append(roots, n)
		}
	}
	reach := g.ReachableFrom(roots)
	g.Walk(func(n *Node) {
		if n.Decl == nil || n.Decl.Body == nil || n.Test || !reach.Contains(n) {
			return
		}
		chain := pathSteps(mod, reach.PathTo(n))
		randsplitKeys(mp, n, chain, reported)
	})
}

// randsplitKeys checks every Split call in one reachable body.
func randsplitKeys(mp *ModulePass, n *Node, chain []PathStep, reported map[string]bool) {
	pass, mod := n.Pass, mp.Mod
	unstable := unstableIterVars(pass, mod, n.Decl.Body)
	where := ""
	if len(chain) > 0 {
		where = " (reached via " + renderSteps(chain) + " → " + n.DisplayName(mod) + ")"
	}
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := randSplitCall(pass, mod, call); !ok || len(call.Args) != 2 {
			return true
		}
		label, key := call.Args[0], call.Args[1]
		if tv, ok := pass.Info.Types[label]; !ok || tv.Value == nil {
			mp.reportOnce(reported, label.Pos(), chain,
				"rng key discipline: Split label %s is not a constant; labels name the derived stream and must be compile-time constants on generator paths%s",
				types.ExprString(label), where)
		}
		ast.Inspect(key, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			role, bad := unstable[pass.ObjectOf(id)]
			if !bad {
				return true
			}
			mp.reportOnce(reported, key.Pos(), chain,
				"rng key discipline: Split key %s derives from %s %s, so the stream assignment depends on iteration order and resharding; key children off stable subscriber identity (IMSI, parameters, constants, simtime coordinates) instead%s",
				types.ExprString(key), role, id.Name, where)
			return false
		})
		return true
	})
}

// unstableIterVars collects the iteration-order-dependent variables of
// one body: for-init counters and range key/value variables (value only
// for maps — a slice-range element carries its own identity). Variables
// of simulation-time type (simtime.Day/Week) are stable per-period
// coordinates and never count.
func unstableIterVars(pass *Pass, mod *Module, body *ast.BlockStmt) map[types.Object]string {
	out := map[types.Object]string{}
	add := func(e ast.Expr, role string) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil || isStableTimeType(mod, obj.Type()) {
			return
		}
		out[obj] = role
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.ForStmt:
			if as, ok := nd.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					add(lhs, "loop counter")
				}
			}
		case *ast.RangeStmt:
			isMap := false
			if t := pass.TypeOf(nd.X); t != nil {
				_, isMap = t.Underlying().(*types.Map)
			}
			if isMap {
				if nd.Key != nil {
					add(nd.Key, "map-range variable")
				}
				if nd.Value != nil {
					add(nd.Value, "map-range variable")
				}
			} else if nd.Key != nil {
				add(nd.Key, "range index")
			}
		}
		return true
	})
	return out
}
