package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// fuzzDirectiveOracle is an independent spelling of the suppression
// grammar collectIgnores and Module.Suppressions implement: text is a
// directive iff it starts with the ignore prefix ending at a word
// boundary; a directive with fewer than two fields (check + reason) is
// malformed; otherwise the first field is the suppressed check and the
// rest, whitespace-normalised, is the reason.
func fuzzDirectiveOracle(text string) (check, reason string, malformed, directive bool) {
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return "", "", false, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", true, true
	}
	return fields[0], strings.Join(fields[1:], " "), false, true
}

// FuzzIgnoreDirective drives the suppression-comment parser with
// arbitrary comment lines: every input must classify exactly as the
// oracle says — indexed under the right check, reported as malformed,
// or ignored entirely — and never panic. The seed corpus covers the
// word-boundary trap (//wearlint:ignoreXYZ), tab separators, wildcard
// and unicode reasons.
func FuzzIgnoreDirective(f *testing.F) {
	for _, s := range []string{
		"//wearlint:ignore walltime sim code stamps with simtime",
		"//wearlint:ignore all fixture",
		"//wearlint:ignore",
		"//wearlint:ignore ",
		"//wearlint:ignore walltime",
		"//wearlint:ignorewalltime reason words",
		"//wearlint:ignoreXYZ a b",
		"//wearlint:ignore\twalltime\ttabbed reason",
		"//wearlint:ignore growbound   spaced   out   reason",
		"//wearlint:ignore retain é unicode reason",
		"// plain comment",
		"//",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r\x00") {
			t.Skip("comment text is single-line by construction")
		}
		src := "package p\n\nvar x = 1 //" + line + "\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil || file == nil {
			t.Skip("input does not scan as a comment")
		}
		if len(file.Comments) != 1 || len(file.Comments[0].List) != 1 {
			t.Skip("input split into multiple comments")
		}
		text := file.Comments[0].List[0].Text

		ix := make(ignoreIndex)
		var malformed []Diagnostic
		collectIgnores(fset, []*ast.File{file}, &malformed, ix)

		wantCheck, _, wantMal, wantDir := fuzzDirectiveOracle(text)
		got := ix[ignoreKey{file: "fuzz.go", line: 3}]
		if len(ix) > 0 && len(got) == 0 {
			t.Fatalf("directive indexed at the wrong key: %v", ix)
		}
		switch {
		case !wantDir:
			if len(got) != 0 {
				t.Fatalf("non-directive %q indexed as %v", text, got)
			}
			if len(malformed) != 0 {
				t.Fatalf("non-directive %q reported malformed: %v", text, malformed)
			}
		case wantMal:
			if len(got) != 0 {
				t.Fatalf("malformed directive %q indexed as %v", text, got)
			}
			if len(malformed) != 1 {
				t.Fatalf("malformed directive %q: want 1 report, got %v", text, malformed)
			}
			if malformed[0].Check != "ignore" || malformed[0].Pos.Line != 3 {
				t.Fatalf("malformed report misplaced: %+v", malformed[0])
			}
			if !strings.Contains(malformed[0].Message, "malformed suppression") {
				t.Fatalf("malformed report message = %q", malformed[0].Message)
			}
		default:
			if len(malformed) != 0 {
				t.Fatalf("well-formed directive %q reported malformed: %v", text, malformed)
			}
			if len(got) != 1 || got[0] != wantCheck {
				t.Fatalf("directive %q indexed as %v, want [%s]", text, got, wantCheck)
			}
			if got[0] == "" || strings.ContainsAny(got[0], " \t") {
				t.Fatalf("indexed check name %q is not a clean token", got[0])
			}
		}
	})
}
