package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//wearlint:ignore <check> <reason>
//
// It silences diagnostics of the named check (or every check, for the
// name "all") on the same line or on the line directly below the
// comment. The reason is mandatory so suppressions stay auditable.
const ignorePrefix = "//wearlint:ignore"

type ignoreKey struct {
	file string
	line int
}

type ignoreIndex map[ignoreKey][]string

// collectIgnores scans a unit's comments for suppression directives.
// Malformed directives (missing check name or reason) are themselves
// reported under the "ignore" pseudo-check, which cannot be suppressed.
func collectIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) ignoreIndex {
	ix := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Check:   "ignore",
						Pos:     pos,
						Message: "malformed suppression: want //wearlint:ignore <check> <reason>",
					})
					continue
				}
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				ix[key] = append(ix[key], fields[0])
			}
		}
	}
	return ix
}

// filter drops suppressed diagnostics from diags[from:]. A diagnostic is
// suppressed when a matching directive sits on its own line or the line
// above.
func (ix ignoreIndex) filter(diags []Diagnostic, from int) []Diagnostic {
	if len(ix) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		if ix.matches(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func (ix ignoreIndex) matches(d Diagnostic) bool {
	if d.Check == "ignore" {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, check := range ix[ignoreKey{file: d.Pos.Filename, line: line}] {
			if check == d.Check || check == "all" {
				return true
			}
		}
	}
	return false
}
