package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//wearlint:ignore <check> <reason>
//
// It silences diagnostics of the named check (or every check, for the
// name "all") on the same line or on the line directly below the
// comment. The reason is mandatory so suppressions stay auditable.
const ignorePrefix = "//wearlint:ignore"

type ignoreKey struct {
	file string
	line int
}

type ignoreIndex map[ignoreKey][]string

// ignoreIndex builds (once per Module) the module-wide suppression index
// and appends the malformed-directive diagnostics to diags. Caching the
// index keeps repeat Runs from re-scanning comments while still
// re-reporting malformed directives each Run.
func (m *Module) ignoreIndex(diags *[]Diagnostic) ignoreIndex {
	if m.ign == nil {
		var malformed []Diagnostic
		m.ign = make(ignoreIndex)
		for _, u := range m.Units {
			collectIgnores(m.Fset, u.Files, &malformed, m.ign)
		}
		m.ignMalformed = malformed
	}
	*diags = append(*diags, m.ignMalformed...)
	return m.ign
}

// parseIgnoreDirective is the single grammar for suppression comments,
// shared by the filtering index and the inventory (and fuzzed as one
// surface). directive reports whether the text is an ignore directive at
// all; malformed reports a directive missing its check name or reason.
// For a well-formed directive, check is the first field and reason is
// the rest with interior whitespace normalised to single spaces.
func parseIgnoreDirective(text string) (check, reason string, directive, malformed bool) {
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return "", "", false, false
	}
	// The prefix must end at a word boundary: //wearlint:ignoreXYZ
	// is not a directive (and must not silently parse as one), but
	// a bare //wearlint:ignore still reports as malformed below.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return "", "", true, true
	}
	return fields[0], strings.Join(fields[1:], " "), true, false
}

// collectIgnores scans a unit's comments for suppression directives into
// ix. Malformed directives (missing check name or reason) are themselves
// reported under the "ignore" pseudo-check, which cannot be suppressed.
func collectIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic, ix ignoreIndex) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, _, directive, malformed := parseIgnoreDirective(c.Text)
				if !directive {
					continue
				}
				pos := fset.Position(c.Pos())
				if malformed {
					*diags = append(*diags, Diagnostic{
						Check:   "ignore",
						Pos:     pos,
						Message: "malformed suppression: want //wearlint:ignore <check> <reason>",
					})
					continue
				}
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				ix[key] = append(ix[key], check)
			}
		}
	}
}

// filter drops suppressed diagnostics from diags[from:]. A diagnostic is
// suppressed when a matching directive sits on its own line or the line
// above — the reported position, or, for path-carrying interprocedural
// diagnostics, any call site along the chain. In particular an ignore on
// the root call site suppresses the whole reported chain.
func (ix ignoreIndex) filter(diags []Diagnostic, from int) []Diagnostic {
	if len(ix) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		if ix.matches(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func (ix ignoreIndex) matches(d Diagnostic) bool {
	if d.Check == "ignore" {
		return false
	}
	if ix.matchesAt(d.Check, d.Pos) {
		return true
	}
	for _, step := range d.Path {
		if ix.matchesAt(d.Check, step.Pos) {
			return true
		}
	}
	return false
}

func (ix ignoreIndex) matchesAt(check string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range ix[ignoreKey{file: pos.Filename, line: line}] {
			if name == check || name == "all" {
				return true
			}
		}
	}
	return false
}
