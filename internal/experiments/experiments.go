// Package experiments defines one reproduction experiment per figure and
// quantitative takeaway of the paper: the paper-reported value, the band we
// accept as "shape holds", and how to extract the measured value from a
// study run. The table drives cmd/wearbench and EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"wearwild/internal/core"
	"wearwild/internal/gen/apps"
)

// Metric is one paper-vs-measured comparison.
type Metric struct {
	Name     string
	Unit     string
	Paper    float64 // the paper's reported value
	Measured float64
	Lo, Hi   float64 // acceptance band for "shape holds"
}

// OK reports whether the measured value falls in the acceptance band.
func (m Metric) OK() bool { return m.Measured >= m.Lo && m.Measured <= m.Hi }

// String renders one comparison row.
func (m Metric) String() string {
	status := "OK"
	if !m.OK() {
		status = "MISS"
	}
	return fmt.Sprintf("%-34s paper=%8.2f%-4s measured=%8.2f%-4s band=[%.2f, %.2f] %s",
		m.Name, m.Paper, m.Unit, m.Measured, m.Unit, m.Lo, m.Hi, status)
}

// Experiment is one figure's reproduction definition.
type Experiment struct {
	// ID is the index key used in DESIGN.md (F2a ... T2).
	ID    string
	Title string
	// Workload describes the scenario parameters that produce the figure.
	Workload string
	// Modules lists the packages that implement the pieces.
	Modules string
	// Bench is the testing.B target that regenerates the figure.
	Bench string
	// Extract pulls the comparison metrics out of a study run.
	Extract func(*core.Results) []Metric
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{
			ID: "F2a", Title: "Fig 2(a) — adoption of SIM-enabled wearables",
			Workload: "five-month MME presence of wearable TACs; weekly UDR any-traffic flag",
			Modules:  "gen/population, gen/sim, study/identify, core",
			Bench:    "BenchmarkFig2aAdoption",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "total growth", Unit: "%", Paper: 9, Measured: r.Fig2a.TotalGrowthPct, Lo: 4, Hi: 14},
					{Name: "monthly growth", Unit: "%", Paper: 1.5, Measured: r.Fig2a.MonthlyGrowthPct, Lo: 0.8, Hi: 2.8},
					{Name: "ever-transmitting share", Unit: "", Paper: 0.34, Measured: r.Fig2a.DataActiveShare, Lo: 0.27, Hi: 0.42},
				}
			},
		},
		{
			ID: "F2b", Title: "Fig 2(b) — first week vs last week",
			Workload: "first-week wearable users tracked to the final week",
			Modules:  "gen/population, core",
			Bench:    "BenchmarkFig2bRetention",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "retained in last week", Unit: "", Paper: 0.77, Measured: r.Fig2b.RetainedFrac, Lo: 0.60, Hi: 0.92},
					{Name: "abandoned", Unit: "", Paper: 0.07, Measured: r.Fig2b.AbandonedFrac, Lo: 0.03, Hi: 0.12},
				}
			},
		},
		{
			ID: "F3a", Title: "Fig 3(a) — hourly usage pattern",
			Workload: "hour-of-day histograms of users/tx/bytes, weekday vs weekend, weekly-normalised",
			Modules:  "gen/traffic, core",
			Bench:    "BenchmarkFig3aHourly",
			Extract: func(r *core.Results) []Metric {
				commuteShare := func(s [24]float64) float64 {
					var c, t float64
					for h := 0; h < 24; h++ {
						t += s[h]
						if (h >= 4 && h < 9) || (h >= 16 && h < 20) {
							c += s[h]
						}
					}
					if t == 0 {
						return 0
					}
					return c / t
				}
				excess := commuteShare(r.Fig3a.WeekdayTx) - commuteShare(r.Fig3a.WeekendTx)
				return []Metric{
					{Name: "daily share of weekly actives", Unit: "", Paper: 0.35, Measured: r.Fig3a.DailyActiveShare, Lo: 0.22, Hi: 0.50},
					{Name: "weekday commute-share excess", Unit: "", Paper: 0.05, Measured: excess, Lo: 0.001, Hi: 0.5},
					{Name: "relative weekend usage", Unit: "x", Paper: 1.1, Measured: r.Fig3a.RelativeWeekendFactor, Lo: 1.005, Hi: 1.6},
				}
			},
		},
		{
			ID: "F3b", Title: "Fig 3(b) — active days and hours",
			Workload: "per-user active days/week and hours/day CDFs over the 7-week window",
			Modules:  "study/usermetrics, stats, core",
			Bench:    "BenchmarkFig3bActivity",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "mean active days/week", Unit: "d", Paper: 1, Measured: r.Fig3b.MeanDays, Lo: 0.7, Hi: 2.8},
					{Name: "mean active hours/day", Unit: "h", Paper: 3, Measured: r.Fig3b.MeanHours, Lo: 2.0, Hi: 4.3},
					{Name: "days under 5h", Unit: "", Paper: 0.80, Measured: r.Fig3b.FracUnder5h, Lo: 0.68, Hi: 0.94},
					{Name: "days over 10h", Unit: "", Paper: 0.07, Measured: r.Fig3b.FracOver10h, Lo: 0.01, Hi: 0.15},
				}
			},
		},
		{
			ID: "F3c", Title: "Fig 3(c) — transaction sizes",
			Workload: "size distribution of all wearable transactions; per-user hourly rates",
			Modules:  "gen/traffic, study/usermetrics, core",
			Bench:    "BenchmarkFig3cTransactions",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "median size", Unit: "B", Paper: 3000, Measured: r.Fig3c.MedianSizeBytes, Lo: 1800, Hi: 4800},
					{Name: "share under 10KB", Unit: "", Paper: 0.80, Measured: r.Fig3c.FracUnder10KB, Lo: 0.70, Hi: 0.95},
					{Name: "phone/wearable size spread", Unit: "x", Paper: 1.5, Measured: safeRatio(r.Fig3c.PhoneLogSizeStd, r.Fig3c.WearableLogSizeStd), Lo: 1.05, Hi: 4},
				}
			},
		},
		{
			ID: "F3d", Title: "Fig 3(d) — transactions vs active hours",
			Workload: "per-user (active hours/day, tx/hour) correlation",
			Modules:  "study/usermetrics, stats, core",
			Bench:    "BenchmarkFig3dCorrelation",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "Spearman(hours, tx/hour)", Unit: "", Paper: 0.5, Measured: r.Fig3d.Spearman, Lo: 0.2, Hi: 1},
				}
			},
		},
		{
			ID: "F4a", Title: "Fig 4(a) — owners vs remaining customers",
			Workload: "per-user UDR totals, wearable owners vs rest, normalised CDFs",
			Modules:  "gen/traffic, study/usermetrics, core",
			Bench:    "BenchmarkFig4aOwnersVsRest",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "data gain", Unit: "%", Paper: 26, Measured: r.Fig4a.DataGainPct, Lo: 8, Hi: 60},
					{Name: "transaction gain", Unit: "%", Paper: 48, Measured: r.Fig4a.TxGainPct, Lo: 20, Hi: 100},
				}
			},
		},
		{
			ID: "F4b", Title: "Fig 4(b) — wearable share of owner traffic",
			Workload: "wearable vs total bytes per owner over the detail window",
			Modules:  "study/usermetrics, core",
			Bench:    "BenchmarkFig4bDeviceShare",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "orders of magnitude below", Unit: "", Paper: 3, Measured: r.Fig4b.OrdersOfMagnitude, Lo: 1.7, Hi: 4},
					{Name: "users at ≥3% share", Unit: "", Paper: 0.10, Measured: r.Fig4b.FracOver3Pct, Lo: 0.005, Hi: 0.30},
				}
			},
		},
		{
			ID: "F4c", Title: "Fig 4(c) — max displacement & entropy",
			Workload: "daily max antenna displacement and dwell-weighted location entropy",
			Modules:  "gen/mobility, study/mobmetrics, core",
			Bench:    "BenchmarkFig4cDisplacement",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "owner mean displacement", Unit: "km", Paper: 20, Measured: r.Fig4c.OwnerMeanKm, Lo: 12, Hi: 30},
					{Name: "owner p90 displacement", Unit: "km", Paper: 30, Measured: r.Fig4c.OwnerP90Km, Lo: 18, Hi: 55},
					{Name: "owner/rest ratio", Unit: "x", Paper: 1.94, Measured: safeRatio(r.Fig4c.OwnerMeanKm, r.Fig4c.RestMeanKm), Lo: 1.4, Hi: 3.4},
					{Name: "entropy gain", Unit: "%", Paper: 70, Measured: r.Fig4c.EntropyGainPct, Lo: 20, Hi: 150},
					{Name: "single-location users", Unit: "", Paper: 0.60, Measured: r.Fig4c.SingleLocationFrac, Lo: 0.45, Hi: 0.80},
				}
			},
		},
		{
			ID: "F4d", Title: "Fig 4(d) — displacement vs hourly activity",
			Workload: "per-user (mean displacement, tx/hour) correlation",
			Modules:  "study/mobmetrics, stats, core",
			Bench:    "BenchmarkFig4dMobilityActivity",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "Spearman(disp, tx/hour)", Unit: "", Paper: 0.3, Measured: r.Fig4d.Spearman, Lo: 0.1, Hi: 1},
				}
			},
		},
		{
			ID: "F5a", Title: "Fig 5(a) — app popularity",
			Workload: "per-app daily associated users and used days, percent of daily total",
			Modules:  "gen/apps, study/appid, study/sessions, core",
			Bench:    "BenchmarkFig5aAppPopularity",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "Weather measured rank", Unit: "", Paper: 1, Measured: float64(rankOfApp(r.Fig5a, "Weather") + 1), Lo: 1, Hi: 4},
					{Name: "Google-Maps measured rank", Unit: "", Paper: 2, Measured: float64(rankOfApp(r.Fig5a, "Google-Maps") + 1), Lo: 1, Hi: 6},
					{Name: "Accuweather measured rank", Unit: "", Paper: 3, Measured: float64(rankOfApp(r.Fig5a, "Accuweather") + 1), Lo: 1, Hi: 6},
					{Name: "Samsung-Pay measured rank", Unit: "", Paper: 9, Measured: float64(rankOfApp(r.Fig5a, "Samsung-Pay") + 1), Lo: 1, Hi: 16},
					{Name: "top1/top30 popularity ratio", Unit: "x", Paper: 100, Measured: top30Ratio(r.Fig5a), Lo: 20, Hi: 1e6},
				}
			},
		},
		{
			ID: "F5b", Title: "Fig 5(b) — app usage, transactions, data",
			Workload: "per-app usage frequency, transaction and data shares",
			Modules:  "study/sessions, study/appid, core",
			Bench:    "BenchmarkFig5bAppUsage",
			Extract: func(r *core.Results) []Metric {
				msgr := usageOfApp(r.Fig5b, "Messenger")
				wapp := usageOfApp(r.Fig5b, "WhatsApp")
				return []Metric{
					{Name: "Messenger tx/data share ratio", Unit: "x", Paper: 2, Measured: safeRatio(msgr.TxSharePct, msgr.DataSharePct), Lo: 1.01, Hi: 100},
					{Name: "WhatsApp data/tx share ratio", Unit: "x", Paper: 3, Measured: safeRatio(wapp.DataSharePct, wapp.TxSharePct), Lo: 1.01, Hi: 100},
				}
			},
		},
		{
			ID: "F6", Title: "Fig 6 — category popularity",
			Workload: "category shares of users, usage frequency, transactions and data",
			Modules:  "gen/apps, core",
			Bench:    "BenchmarkFig6Categories",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "Communication user rank", Unit: "", Paper: 1, Measured: float64(rankOfCat(r.Fig6, apps.Communication) + 1), Lo: 1, Hi: 3},
					{Name: "Shopping user rank", Unit: "", Paper: 2, Measured: float64(rankOfCat(r.Fig6, apps.Shopping) + 1), Lo: 1, Hi: 4},
					{Name: "Weather user rank", Unit: "", Paper: 4, Measured: float64(rankOfCat(r.Fig6, apps.Weather) + 1), Lo: 1, Hi: 5},
					{Name: "Health-Fitness user rank", Unit: "", Paper: 14, Measured: float64(rankOfCat(r.Fig6, apps.HealthFitness) + 1), Lo: 8, Hi: 15},
				}
			},
		},
		{
			ID: "F7", Title: "Fig 7 — per-usage transactions and data",
			Workload: "per-app mean transactions and KB per single usage",
			Modules:  "study/sessions, core",
			Bench:    "BenchmarkFig7PerUsage",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "WhatsApp KB/usage rank", Unit: "", Paper: 1, Measured: float64(rankOfUsage(r.Fig7, "WhatsApp") + 1), Lo: 1, Hi: 9},
					{Name: "Deezer KB/usage rank", Unit: "", Paper: 2, Measured: float64(rankOfUsage(r.Fig7, "Deezer") + 1), Lo: 1, Hi: 9},
					{Name: "Snapchat KB/usage rank", Unit: "", Paper: 3, Measured: float64(rankOfUsage(r.Fig7, "Snapchat") + 1), Lo: 1, Hi: 9},
				}
			},
		},
		{
			ID: "F8", Title: "Fig 8 — applications and third-party services",
			Workload: "transaction-category shares of users/frequency/data",
			Modules:  "study/appid, core",
			Bench:    "BenchmarkFig8ThirdParty",
			Extract: func(r *core.Results) []Metric {
				third := r.Fig8[apps.KindUtilities].DataSharePct +
					r.Fig8[apps.KindAdvertising].DataSharePct +
					r.Fig8[apps.KindAnalytics].DataSharePct
				return []Metric{
					{Name: "first/third party data ratio", Unit: "x", Paper: 3, Measured: safeRatio(r.Fig8[apps.KindApplication].DataSharePct, third), Lo: 0.8, Hi: 10},
					{Name: "advertising data share", Unit: "%", Paper: 5, Measured: r.Fig8[apps.KindAdvertising].DataSharePct, Lo: 0.5, Hi: 25},
				}
			},
		},
		{
			ID: "T1", Title: "§4.3 — apps per user",
			Workload: "distinct apps observed per user; one-app days",
			Modules:  "gen/traffic, core",
			Bench:    "BenchmarkTakeawayApps",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "mean apps/user (observed)", Unit: "", Paper: 8, Measured: r.Takeaways.MeanAppsPerUser, Lo: 3, Hi: 11},
					{Name: "users under 20 apps", Unit: "", Paper: 0.90, Measured: r.Takeaways.FracUnder20Apps, Lo: 0.85, Hi: 1},
					{Name: "one-app days", Unit: "", Paper: 0.93, Measured: r.Takeaways.OneAppDayFrac, Lo: 0.85, Hi: 0.995},
				}
			},
		},
		{
			ID: "T2", Title: "Conclusion — Through-Device fingerprinting",
			Workload: "companion-domain scan of non-wearable users' phone traffic",
			Modules:  "study/fingerprint, core",
			Bench:    "BenchmarkThroughDevice",
			Extract: func(r *core.Results) []Metric {
				return []Metric{
					{Name: "identified TD users", Unit: "", Paper: 0, Measured: float64(r.TD.Identified), Lo: 1, Hi: 1e9},
					{Name: "TD/SIM displacement ratio", Unit: "x", Paper: 1, Measured: safeRatio(r.TD.MeanDispTDKm, r.TD.MeanDispSIMKm), Lo: 0.5, Hi: 2},
					{Name: "TD phone-year gain", Unit: "y", Paper: 0.5, Measured: r.TD.MeanPhoneYearTD - r.TD.MeanPhoneYearOther, Lo: 0.05, Hi: 3},
					{Name: "TD hourly-pattern similarity", Unit: "", Paper: 0.95, Measured: r.TD.PatternSimilarity, Lo: 0.75, Hi: 1},
				}
			},
		},
	}
}

// Evaluated pairs an experiment with its extracted metrics.
type Evaluated struct {
	Experiment
	Metrics []Metric
}

// Passed reports whether every metric landed in band.
func (e Evaluated) Passed() bool {
	for _, m := range e.Metrics {
		if !m.OK() {
			return false
		}
	}
	return true
}

// Evaluate runs every experiment's extraction over one study result.
func Evaluate(res *core.Results) []Evaluated {
	exps := All()
	out := make([]Evaluated, 0, len(exps))
	for _, e := range exps {
		out = append(out, Evaluated{Experiment: e, Metrics: e.Extract(res)})
	}
	return out
}

func rankOfApp(rows []core.AppPopularity, name string) int {
	for i, r := range rows {
		if r.App == name {
			return i
		}
	}
	return 999
}

func rankOfUsage(rows []core.PerUsage, name string) int {
	for i, r := range rows {
		if r.App == name {
			return i
		}
	}
	return 999
}

func rankOfCat(rows []core.CategoryShare, cat apps.Category) int {
	for i, r := range rows {
		if r.Category == cat {
			return i
		}
	}
	return 999
}

func usageOfApp(rows []core.AppUsage, name string) core.AppUsage {
	for _, r := range rows {
		if r.App == name {
			return r
		}
	}
	return core.AppUsage{App: name}
}

func top30Ratio(rows []core.AppPopularity) float64 {
	if len(rows) < 30 || rows[29].DailyUsersSharePct == 0 {
		return 0
	}
	return rows[0].DailyUsersSharePct / rows[29].DailyUsersSharePct
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
