package experiments

import (
	"fmt"
	"io"
)

// WriteMarkdown renders evaluated experiments as the EXPERIMENTS.md body:
// one section per figure with a paper-vs-measured table.
func WriteMarkdown(w io.Writer, evals []Evaluated) error {
	pass := 0
	total := 0
	for _, e := range evals {
		for _, m := range e.Metrics {
			total++
			if m.OK() {
				pass++
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%d of %d shape metrics inside their acceptance bands.\n", pass, total); err != nil {
		return err
	}
	for _, e := range evals {
		fmt.Fprintf(w, "\n## %s: %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "- Workload: %s\n", e.Workload)
		fmt.Fprintf(w, "- Modules: `%s`\n", e.Modules)
		fmt.Fprintf(w, "- Bench: `%s`\n\n", e.Bench)
		fmt.Fprintf(w, "| metric | paper | measured | band | status |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|\n")
		for _, m := range e.Metrics {
			status := "ok"
			if !m.OK() {
				status = "**miss**"
			}
			fmt.Fprintf(w, "| %s | %.2f%s | %.2f%s | [%.2f, %.2f] | %s |\n",
				m.Name, m.Paper, m.Unit, m.Measured, m.Unit, m.Lo, m.Hi, status)
		}
	}
	return nil
}
