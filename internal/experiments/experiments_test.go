package experiments

import (
	"bytes"
	"strings"
	"testing"

	"wearwild/internal/core"
	"wearwild/internal/gen/sim"
)

func TestAllWellFormed(t *testing.T) {
	exps := All()
	if len(exps) != 17 {
		t.Fatalf("experiments = %d, want 17 (15 figure panels + 2 takeaways)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Workload == "" || e.Modules == "" || e.Bench == "" {
			t.Fatalf("experiment %q missing fields", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Extract == nil {
			t.Fatalf("experiment %q has no extractor", e.ID)
		}
	}
	for _, id := range []string{"F2a", "F2b", "F3a", "F3b", "F3c", "F3d", "F4a", "F4b", "F4c", "F4d", "F5a", "F5b", "F6", "F7", "F8", "T1", "T2"} {
		if !seen[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestMetricOK(t *testing.T) {
	m := Metric{Name: "x", Measured: 5, Lo: 4, Hi: 6}
	if !m.OK() {
		t.Fatal("in-band metric not OK")
	}
	m.Measured = 7
	if m.OK() {
		t.Fatal("out-of-band metric OK")
	}
	if !strings.Contains(m.String(), "MISS") {
		t.Fatal("String does not flag misses")
	}
	m.Measured = 5
	if !strings.Contains(m.String(), "OK") {
		t.Fatal("String does not flag passes")
	}
}

func TestExtractorsOnEmptyResults(t *testing.T) {
	// Extractors must be total: an empty Results yields metrics (likely
	// out of band) without panicking.
	res := &core.Results{}
	for _, e := range All() {
		metrics := e.Extract(res)
		if len(metrics) == 0 {
			t.Fatalf("experiment %s extracted no metrics", e.ID)
		}
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := sim.DefaultConfig(1234)
	cfg.Population.WearableUsers = 1200
	cfg.Population.OrdinaryUsers = 3600
	cfg.Cells.UrbanSectors = 700
	cfg.Cells.RuralSectors = 300
	cfg.OrdinaryMobilitySample = 1200
	ds, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	study, err := core.NewStudy(ds, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	evals := Evaluate(res)
	if len(evals) != len(All()) {
		t.Fatalf("evaluated %d", len(evals))
	}
	failures := 0
	for _, e := range evals {
		for _, m := range e.Metrics {
			if !m.OK() {
				failures++
				t.Logf("%s: %s", e.ID, m)
			}
		}
	}
	if failures > 0 {
		t.Fatalf("%d metrics out of band", failures)
	}

	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, evals); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## F2a", "## T2", "| metric |", "shape metrics inside"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
	if strings.Contains(out, "**miss**") {
		t.Fatal("markdown reports misses on the reference seed")
	}
}
