// Package sortx holds the tiny sorting helpers that keep map-backed
// aggregation deterministic. Go randomises map iteration order per run;
// every loop that emits rows, appends samples, or accumulates floats from
// a map must walk it through Keys so the byte output of a study is a pure
// function of its seed. The wearlint maporder check enforces the
// discipline; this package is the one-line way to comply.
package sortx

import (
	"cmp"
	"slices"
)

// Keys returns the map's keys in ascending order.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
