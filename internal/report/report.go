// Package report renders study results as the tables and series the paper
// presents: one renderer per figure, plus paper-vs-measured comparison
// tables for the reproduction log. Output is plain text suitable for
// terminals and for committing next to the paper.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"wearwild/internal/core"
	"wearwild/internal/gen/apps"
	"wearwild/internal/sortx"
)

// Renderer writes result sections to one writer.
type Renderer struct {
	w io.Writer
	// MaxRows truncates long app tables (0 = no limit).
	MaxRows int
}

// New returns a renderer. maxRows truncates app-level tables (0 keeps all
// rows).
func New(w io.Writer, maxRows int) *Renderer {
	return &Renderer{w: w, MaxRows: maxRows}
}

func (r *Renderer) printf(format string, args ...any) {
	fmt.Fprintf(r.w, format, args...)
}

func (r *Renderer) section(title string) {
	r.printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// All renders every figure.
func (r *Renderer) All(res *core.Results) {
	r.Fig2a(res)
	r.Fig2b(res)
	r.Fig3a(res)
	r.Fig3b(res)
	r.Fig3c(res)
	r.Fig3d(res)
	r.Fig4a(res)
	r.Fig4b(res)
	r.Fig4c(res)
	r.Fig4d(res)
	r.Fig5a(res)
	r.Fig5b(res)
	r.Fig6(res)
	r.Fig7(res)
	r.Fig8(res)
	r.Weekly(res)
	r.Takeaways(res)
	r.ThroughDevice(res)
}

// Fig2a renders the adoption series.
func (r *Renderer) Fig2a(res *core.Results) {
	a := res.Fig2a
	r.section("Fig 2(a) — SIM-enabled wearable adoption")
	r.printf("wearable users (absolute)  %d\n", a.WearableUsers)
	r.printf("growth                     %+.1f%% total, %+.2f%%/month (paper: +9%%, +1.5%%/month)\n",
		a.TotalGrowthPct, a.MonthlyGrowthPct)
	r.printf("ever transmitted data      %.0f%% (paper: 34%%)\n", 100*a.DataActiveShare)
	if n := len(a.Normalized); n > 0 {
		r.printf("normalised daily users     first=%.3f mid=%.3f last=%.3f\n",
			a.Normalized[0], a.Normalized[n/2], a.Normalized[n-1])
		r.sparkline(a.Normalized)
	}
}

// Fig2b renders the retention comparison.
func (r *Renderer) Fig2b(res *core.Results) {
	b := res.Fig2b
	r.section("Fig 2(b) — first week vs last week")
	r.printf("first-week users           %d\n", b.FirstWeekUsers)
	r.printf("still active in last week  %.0f%% (paper: 77%%)\n", 100*b.RetainedFrac)
	r.printf("abandoned                  %.0f%% (paper: 7%%)\n", 100*b.AbandonedFrac)
	r.printf("intermittent               %.0f%%\n", 100*b.IntermittentFrac)
}

// Fig3a renders the hourly usage pattern.
func (r *Renderer) Fig3a(res *core.Results) {
	h := res.Fig3a
	r.section("Fig 3(a) — hourly usage (normalised by weekly totals)")
	r.printf("daily active share of weekly actives: %.0f%% (paper: 35%%)\n", 100*h.DailyActiveShare)
	r.printf("relative weekend usage vs ISP baseline: %.2fx; evening: %.2fx (paper: slightly higher)\n\n",
		h.RelativeWeekendFactor, h.RelativeEveningFactor)
	r.printf("hour  wd-users  we-users     wd-tx     we-tx   wd-data   we-data\n")
	for hr := 0; hr < 24; hr++ {
		r.printf("%4d  %8.4f  %8.4f  %8.4f  %8.4f  %8.4f  %8.4f\n",
			hr, h.WeekdayUsers[hr], h.WeekendUsers[hr],
			h.WeekdayTx[hr], h.WeekendTx[hr],
			h.WeekdayBytes[hr], h.WeekendBytes[hr])
	}
}

// Fig3b renders activity distributions.
func (r *Renderer) Fig3b(res *core.Results) {
	b := res.Fig3b
	r.section("Fig 3(b) — active days per week / hours per day")
	r.printf("mean active days/week      %.2f (paper: ≈1)\n", b.MeanDays)
	r.printf("mean active hours/day      %.2f (paper: ≈3)\n", b.MeanHours)
	r.printf("days ≤ 5h                  %.0f%% (paper: 80%%)\n", 100*b.FracUnder5h)
	r.printf("days > 10h                 %.0f%% (paper: 7%%)\n", 100*b.FracOver10h)
	r.cdf("active days/week", b.DaysPerWeek)
	r.cdf("active hours/day", b.HoursPerDay)
}

// Fig3c renders transaction statistics.
func (r *Renderer) Fig3c(res *core.Results) {
	c := res.Fig3c
	r.section("Fig 3(c) — transaction sizes and hourly rates")
	r.printf("median transaction size    %.1f KB (paper: ≈3 KB)\n", c.MedianSizeBytes/1024)
	r.printf("transactions ≤ 10 KB       %.0f%% (paper: 80%%)\n", 100*c.FracUnder10KB)
	r.printf("log-size std wear/phone    %.2f / %.2f (paper: wearables more sharply centred)\n",
		c.WearableLogSizeStd, c.PhoneLogSizeStd)
	r.cdf("transaction size (B)", c.SizeCDF)
	r.histogram("size distribution (log bins)", c.SizeHistogram)
	r.cdf("per-user tx/hour", c.HourlyTxPerUser)
	r.cdf("per-user KB/hour", c.HourlyKBPerUser)
}

// Fig3d renders the activity coupling.
func (r *Renderer) Fig3d(res *core.Results) {
	d := res.Fig3d
	r.section("Fig 3(d) — active hours vs transactions per hour")
	r.printf("Spearman correlation       %.2f (paper: clearly positive)\n", d.Spearman)
	r.printf("hours/day   mean tx/hour\n")
	for i := range d.HoursBucket {
		r.printf("%9.0f   %12.2f\n", d.HoursBucket[i], d.TxPerHour[i])
	}
}

// Fig4a renders the owners-vs-rest volume comparison.
func (r *Renderer) Fig4a(res *core.Results) {
	a := res.Fig4a
	r.section("Fig 4(a) — wearable owners vs remaining customers")
	r.printf("data gain                  %+.0f%% (paper: +26%%)\n", a.DataGainPct)
	r.printf("transaction gain           %+.0f%% (paper: +48%%)\n", a.TxGainPct)
	r.cdf("owner bytes (normalised)", a.OwnerBytes)
	r.cdf("rest bytes (normalised)", a.RestBytes)
}

// Fig4b renders the wearable traffic share.
func (r *Renderer) Fig4b(res *core.Results) {
	b := res.Fig4b
	r.section("Fig 4(b) — wearable share of owner traffic")
	r.printf("median share               %.4f%% (paper: ≈0.1%%)\n", 100*b.MedianShare)
	r.printf("orders of magnitude below  %.1f (paper: ≈3)\n", b.OrdersOfMagnitude)
	r.printf("users with ≥3%% share       %.1f%% (paper: ≈10%% at 3%%)\n", 100*b.FracOver3Pct)
	r.cdf("wearable share", b.ShareCDF)
}

// Fig4c renders mobility.
func (r *Renderer) Fig4c(res *core.Results) {
	m := res.Fig4c
	r.section("Fig 4(c) — max displacement and location entropy")
	r.printf("owner mean displacement    %.1f km (paper: ≈20 km)\n", m.OwnerMeanKm)
	r.printf("owner p90                  %.1f km (paper: ≈30 km)\n", m.OwnerP90Km)
	r.printf("rest mean displacement     %.1f km (paper ratio ≈2x: 31 vs 16 km)\n", m.RestMeanKm)
	r.printf("non-stationary means       %.1f vs %.1f km\n", m.NonStationaryOwnerMeanKm, m.NonStationaryRestMeanKm)
	r.printf("entropy gain               %+.0f%% (paper: +70%%)\n", m.EntropyGainPct)
	r.printf("single-location users      %.0f%% (paper: 60%%)\n", 100*m.SingleLocationFrac)
	r.cdf("owner displacement (km)", m.OwnerDisplacement)
	r.cdf("rest displacement (km)", m.RestDisplacement)
}

// Fig4d renders the mobility coupling.
func (r *Renderer) Fig4d(res *core.Results) {
	d := res.Fig4d
	r.section("Fig 4(d) — displacement vs hourly activity")
	r.printf("Spearman correlation       %.2f (paper: positive)\n", d.Spearman)
	r.printf("displacement(km)   mean tx/hour\n")
	for i := range d.DisplacementBucketKm {
		r.printf("%16.0f   %12.2f\n", d.DisplacementBucketKm[i], d.TxPerHour[i])
	}
}

func (r *Renderer) rows(n int) int {
	if r.MaxRows > 0 && n > r.MaxRows {
		return r.MaxRows
	}
	return n
}

// Fig5a renders app popularity.
func (r *Renderer) Fig5a(res *core.Results) {
	r.section("Fig 5(a) — app popularity (percent of daily total)")
	r.printf("%-18s %12s %12s\n", "app", "users%", "used-days%")
	for _, row := range res.Fig5a[:r.rows(len(res.Fig5a))] {
		r.printf("%-18s %12.3f %12.3f\n", row.App, row.DailyUsersSharePct, row.UsedDaysSharePct)
	}
}

// Fig5b renders per-app usage/transactions/data.
func (r *Renderer) Fig5b(res *core.Results) {
	r.section("Fig 5(b) — app usage, transactions and data (percent of daily total)")
	r.printf("%-18s %10s %10s %10s\n", "app", "freq%", "tx%", "data%")
	for _, row := range res.Fig5b[:r.rows(len(res.Fig5b))] {
		r.printf("%-18s %10.3f %10.3f %10.3f\n", row.App, row.FreqSharePct, row.TxSharePct, row.DataSharePct)
	}
}

// Fig6 renders category shares.
func (r *Renderer) Fig6(res *core.Results) {
	r.section("Fig 6 — category shares (percent of daily total)")
	r.printf("%-18s %9s %9s %9s %9s\n", "category", "users%", "freq%", "tx%", "data%")
	for _, row := range res.Fig6 {
		r.printf("%-18s %9.2f %9.2f %9.2f %9.2f\n",
			string(row.Category), row.UsersSharePct, row.FreqSharePct, row.TxSharePct, row.DataSharePct)
	}
}

// Fig7 renders per-usage intensity.
func (r *Renderer) Fig7(res *core.Results) {
	r.section("Fig 7 — transactions and data per single usage")
	r.printf("%-18s %12s %12s %8s\n", "app", "tx/usage", "KB/usage", "usages")
	for _, row := range res.Fig7[:r.rows(len(res.Fig7))] {
		r.printf("%-18s %12.1f %12.1f %8d\n", row.App, row.TxPerUsage, row.KBPerUsage, row.UsageSamples)
	}
}

// Fig8 renders the transaction-category split.
func (r *Renderer) Fig8(res *core.Results) {
	r.section("Fig 8 — applications and third-party services (percent of daily total)")
	r.printf("%-14s %9s %9s %9s\n", "kind", "users%", "freq%", "data%")
	for _, row := range res.Fig8 {
		r.printf("%-14s %9.2f %9.2f %9.2f\n",
			row.Kind.String(), row.UsersSharePct, row.FreqSharePct, row.DataSharePct)
	}
	third := res.Fig8[apps.KindUtilities].DataSharePct +
		res.Fig8[apps.KindAdvertising].DataSharePct +
		res.Fig8[apps.KindAnalytics].DataSharePct
	r.printf("first:third party data ratio  %.1f:1 (paper: same order of magnitude)\n",
		safeDiv(res.Fig8[apps.KindApplication].DataSharePct, third))
	if res.PlanCost.PlanMB > 0 {
		r.printf("ads+analytics overhead        %.0f%% of traffic; %.2f%% of a %.0f MB plan/month (max %.2f%%)\n",
			100*res.PlanCost.MeanOverheadShare, res.PlanCost.MeanPlanSharePct,
			res.PlanCost.PlanMB, res.PlanCost.MaxPlanSharePct)
	}
}

// Weekly renders the §4.2 weekly stability analysis.
func (r *Renderer) Weekly(res *core.Results) {
	w := res.Weekly
	if len(w.Weeks) == 0 {
		return
	}
	r.section("§4.2 — weekly stability (no clear weekly pattern)")
	r.printf("daily tx CV                %.2f (paper: metrics almost constant)\n", w.TxCV)
	r.printf("day-of-week tx shares      ")
	for _, share := range w.DayOfWeekTxShare {
		r.printf("%.3f ", share)
	}
	r.printf(" (flat ≈ %.3f)\n", 1.0/7)
	r.printf("week    users       tx        MB\n")
	for _, row := range w.Weeks {
		r.printf("%4d  %7d  %7d  %8.1f\n", row.Week, row.ActiveUsers, row.Tx, float64(row.Bytes)/1e6)
	}
}

// Takeaways renders the §4.3 numbers.
func (r *Renderer) Takeaways(res *core.Results) {
	t := res.Takeaways
	r.section("Takeaways — apps per user")
	r.printf("mean apps observed/user    %.1f (paper: 8 installed)\n", t.MeanAppsPerUser)
	r.printf("users with < 20 apps       %.0f%% (paper: 90%%)\n", 100*t.FracUnder20Apps)
	r.printf("max apps one user          %d (paper: >100 installed)\n", t.MaxAppsPerUser)
	r.printf("one-app days               %.0f%% (paper: 93%%)\n", 100*t.OneAppDayFrac)
}

// ThroughDevice renders the fingerprinting results.
func (r *Renderer) ThroughDevice(res *core.Results) {
	td := res.TD
	r.section("Conclusion — Through-Device wearable fingerprinting")
	r.printf("identified users           %d\n", td.Identified)
	for _, svc := range sortx.Keys(td.ByService) {
		r.printf("  %-24s %d\n", svc, td.ByService[svc])
	}
	r.printf("mean displacement TD/SIM   %.1f / %.1f km (paper: similar)\n", td.MeanDispTDKm, td.MeanDispSIMKm)
	r.printf("mean phone year TD/other   %.1f / %.1f (paper: TD phones more modern)\n",
		td.MeanPhoneYearTD, td.MeanPhoneYearOther)
	r.printf("hourly pattern similarity  %.2f (paper: similar macroscopic behavior)\n",
		td.PatternSimilarity)
}

// histogram prints an ASCII bar chart of a binned distribution.
func (r *Renderer) histogram(name string, bins []core.HistBin) {
	if len(bins) == 0 {
		return
	}
	var max float64
	for _, b := range bins {
		if b.Share > max {
			max = b.Share
		}
	}
	if max == 0 {
		return
	}
	r.printf("  %s:\n", name)
	for _, b := range bins {
		if b.Share == 0 {
			continue
		}
		width := int(b.Share / max * 40)
		r.printf("    %9s-%-9s %5.1f%% %s\n",
			compact(b.Lo), compact(b.Hi), 100*b.Share, strings.Repeat("#", width))
	}
}

// cdf prints a compact quantile table of a series.
func (r *Renderer) cdf(name string, s core.Series) {
	if len(s.X) == 0 {
		return
	}
	r.printf("  %-24s", name+":")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		r.printf("  p%02.0f=%s", q*100, compact(quantileOf(s, q)))
	}
	r.printf("\n")
}

// quantileOf reads a quantile off an exported CDF series.
func quantileOf(s core.Series, q float64) float64 {
	for i, p := range s.P {
		if p >= q {
			return s.X[i]
		}
	}
	if n := len(s.X); n > 0 {
		return s.X[n-1]
	}
	return 0
}

// sparkline draws a one-line chart of a series.
func (r *Renderer) sparkline(v []float64) {
	if len(v) == 0 {
		return
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := v[0], v[0]
	for _, x := range v {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	span := max - min
	var sb strings.Builder
	step := 1
	if len(v) > 80 {
		step = len(v) / 80
	}
	for i := 0; i < len(v); i += step {
		idx := 0
		if span > 0 {
			idx = int((v[i] - min) / span * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	r.printf("  %s\n", sb.String())
}

func compact(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
