package report

import (
	"bytes"
	"strings"
	"testing"

	"wearwild/internal/core"
	"wearwild/internal/gen/apps"
	"wearwild/internal/simtime"
)

// fakeResults builds a small, fully populated Results tree so renderers
// can be tested without running the pipeline.
func fakeResults() *core.Results {
	res := &core.Results{}
	days := make([]simtime.Day, 10)
	for i := range days {
		days[i] = simtime.Day(i)
	}
	res.Fig2a = core.Adoption{
		Days:             days,
		Normalized:       []float64{0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99, 1.0},
		MonthlyGrowthPct: 1.5,
		TotalGrowthPct:   9,
		DataActiveShare:  0.34,
		WearableUsers:    3000,
	}
	res.Fig2b = core.Retention{FirstWeekUsers: 2700, RetainedFrac: 0.77, AbandonedFrac: 0.07, IntermittentFrac: 0.16}
	for h := 0; h < 24; h++ {
		res.Fig3a.WeekdayTx[h] = 0.04
		res.Fig3a.WeekendTx[h] = 0.04
	}
	res.Fig3a.DailyActiveShare = 0.35
	series := core.Series{X: []float64{1, 2, 3, 4, 5}, P: []float64{0.2, 0.4, 0.6, 0.8, 1.0}}
	res.Fig3b = core.ActivityDistributions{DaysPerWeek: series, HoursPerDay: series, MeanDays: 1.2, MeanHours: 3.1, FracUnder5h: 0.8, FracOver10h: 0.07}
	res.Fig3c = core.Transactions{SizeCDF: series, MedianSizeBytes: 3000, FracUnder10KB: 0.8, HourlyTxPerUser: series, HourlyKBPerUser: series}
	res.Fig3d = core.ActivityCoupling{HoursBucket: []float64{1, 2, 3}, TxPerHour: []float64{5, 7, 9}, Spearman: 0.6}
	res.Fig4a = core.OwnersVsRest{OwnerBytes: series, RestBytes: series, DataGainPct: 26, TxGainPct: 48}
	res.Fig4b = core.DeviceShare{ShareCDF: series, MedianShare: 0.001, FracOver3Pct: 0.1, OrdersOfMagnitude: 3}
	res.Fig4c = core.Mobility{OwnerDisplacement: series, RestDisplacement: series, OwnerMeanKm: 20, RestMeanKm: 10, OwnerP90Km: 30, EntropyGainPct: 70, SingleLocationFrac: 0.6, NonStationaryOwnerMeanKm: 22, NonStationaryRestMeanKm: 12}
	res.Fig4d = core.MobilityCoupling{DisplacementBucketKm: []float64{5, 10}, TxPerHour: []float64{6, 8}, Spearman: 0.3}
	res.Fig5a = []core.AppPopularity{
		{App: "Weather", DailyUsersSharePct: 12, UsedDaysSharePct: 11},
		{App: "Google-Maps", DailyUsersSharePct: 10, UsedDaysSharePct: 10},
		{App: "Accuweather", DailyUsersSharePct: 9, UsedDaysSharePct: 9},
	}
	res.Fig5b = []core.AppUsage{{App: "Weather", FreqSharePct: 12, TxSharePct: 13, DataSharePct: 9}}
	res.Fig6 = []core.CategoryShare{{Category: apps.Communication, UsersSharePct: 22, FreqSharePct: 20, TxSharePct: 21, DataSharePct: 35}}
	res.Fig7 = []core.PerUsage{{App: "WhatsApp", TxPerUsage: 10, KBPerUsage: 260, UsageSamples: 500}}
	res.Fig8[apps.KindApplication] = core.DomainKindShare{Kind: apps.KindApplication, UsersSharePct: 60, FreqSharePct: 62, DataSharePct: 70}
	res.Fig8[apps.KindAdvertising] = core.DomainKindShare{Kind: apps.KindAdvertising, UsersSharePct: 15, FreqSharePct: 13, DataSharePct: 8}
	res.Takeaways = core.Takeaways{MeanAppsPerUser: 8, FracUnder20Apps: 0.9, MaxAppsPerUser: 120, OneAppDayFrac: 0.93}
	res.TD = core.ThroughDevice{Identified: 250, ByService: map[string]int{"Fitbit": 120, "Strava": 60}, MeanDispTDKm: 19, MeanDispSIMKm: 20}
	return res
}

func render(t *testing.T, maxRows int) string {
	t.Helper()
	var buf bytes.Buffer
	New(&buf, maxRows).All(fakeResults())
	return buf.String()
}

func TestAllSectionsPresent(t *testing.T) {
	out := render(t, 0)
	for _, want := range []string{
		"Fig 2(a)", "Fig 2(b)", "Fig 3(a)", "Fig 3(b)", "Fig 3(c)", "Fig 3(d)",
		"Fig 4(a)", "Fig 4(b)", "Fig 4(c)", "Fig 4(d)",
		"Fig 5(a)", "Fig 5(b)", "Fig 6", "Fig 7", "Fig 8",
		"Takeaways", "Through-Device",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing section %q", want)
		}
	}
}

func TestKeyNumbersRendered(t *testing.T) {
	out := render(t, 0)
	for _, want := range []string{
		"+9.0% total",      // Fig2a growth
		"34% (paper: 34%)", // data-active share
		"77% (paper: 77%)", // retention
		"2.9 KB",           // 3000 B median as KB
		"+26% (paper: +26%)",
		"20.0 km",
		"Weather",
		"WhatsApp",
		"Fitbit",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestMaxRowsTruncates(t *testing.T) {
	full := render(t, 0)
	truncated := render(t, 1)
	if strings.Contains(truncated, "Accuweather") {
		t.Fatal("truncation did not drop rows")
	}
	if !strings.Contains(full, "Accuweather") {
		t.Fatal("full output missing rows")
	}
}

func TestEmptyResultsDoNotPanic(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, 5).All(&core.Results{})
	if buf.Len() == 0 {
		t.Fatal("no output at all")
	}
}

func TestCompactFormatting(t *testing.T) {
	cases := map[float64]string{
		1.5e9:  "1.5G",
		2.5e6:  "2.5M",
		3.2e3:  "3.2k",
		42:     "42.0",
		0.0042: "0.0042",
	}
	for v, want := range cases {
		if got := compact(v); got != want {
			t.Fatalf("compact(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestQuantileOf(t *testing.T) {
	s := core.Series{X: []float64{1, 2, 3, 4}, P: []float64{0.25, 0.5, 0.75, 1}}
	if got := quantileOf(s, 0.5); got != 2 {
		t.Fatalf("q50 = %g", got)
	}
	if got := quantileOf(s, 0.9); got != 4 {
		t.Fatalf("q90 = %g", got)
	}
	if got := quantileOf(core.Series{}, 0.5); got != 0 {
		t.Fatalf("empty series q = %g", got)
	}
}
