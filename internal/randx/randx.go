// Package randx provides deterministic, splittable randomness and the
// distribution samplers used by the synthetic ISP models.
//
// Everything in wearwild derives from a single study seed. To keep results
// reproducible regardless of evaluation order, the package never uses a
// shared global stream: callers split independent child streams keyed by a
// stable label and entity id (for example "traffic"/userID). Two streams
// split with different keys are statistically independent; the same key
// always yields the same stream.
package randx

import (
	"math"
	"math/rand/v2"
	"slices"
)

// Rand is a deterministic random stream. It wraps a PCG generator from
// math/rand/v2 and adds the samplers the simulation models need.
type Rand struct {
	src *rand.Rand
	// seed material retained so the stream can be split.
	hi, lo uint64
}

// New returns the root stream for a study seed.
func New(seed uint64) *Rand {
	return newFrom(seed, 0x9e3779b97f4a7c15)
}

func newFrom(hi, lo uint64) *Rand {
	hi = splitmix(hi)
	lo = splitmix(lo ^ 0xda942042e4dd58b5)
	return &Rand{src: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Split derives an independent child stream keyed by a stable string label
// and a numeric id. Splitting does not advance the parent stream, so the
// order in which children are split (or whether they are used at all) never
// perturbs sibling streams.
func (r *Rand) Split(label string, id uint64) *Rand {
	h := r.hi
	for i := 0; i < len(label); i++ {
		h = splitmix(h ^ uint64(label[i]))
	}
	return newFrom(h^id, r.lo^splitmix(id))
}

// splitmix is the SplitMix64 finalizer; a strong 64-bit mixing function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal variate.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a lognormal variate where the underlying normal has
// mean mu and standard deviation sigma. The median of the distribution is
// exp(mu) and the mean is exp(mu + sigma^2/2).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// LogNormalMedian returns a lognormal variate parameterised by its median
// rather than mu; convenient when a model is calibrated by a reported
// median (for example the 3 KB median transaction size).
func (r *Rand) LogNormalMedian(median, sigma float64) float64 {
	return r.LogNormal(math.Log(median), sigma)
}

// Pareto returns a Pareto (type I) variate with minimum xm and shape alpha.
// Heavy-tailed: used for the long tails of app installs and usage.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := 1 - r.src.Float64() // in (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// Exponential returns an exponential variate with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return mean * r.src.ExpFloat64()
}

// Poisson returns a Poisson variate with the given mean. It uses Knuth's
// product method for small means and a normal approximation (rounded and
// clamped at zero) for large ones, which is adequate for workload counts.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := math.Round(r.Normal(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence. p must be in (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	u := r.src.Float64()
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// PermInto fills dst with a random permutation of [0, n), reusing dst's
// backing array when it has capacity. The draw sequence is identical to
// Perm's (an identity fill followed by a Fisher–Yates shuffle), so the two
// are interchangeable without perturbing the stream.
func (r *Rand) PermInto(dst []int, n int) []int {
	dst = slices.Grow(dst[:0], n)[:n]
	for i := range dst {
		dst[i] = i
	}
	r.src.Shuffle(n, func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
	return dst
}

// Shuffle randomises the order of n elements via the supplied swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// ZipfWeights returns weights proportional to 1/(rank+1)^s for n ranks.
// Rank 0 is the heaviest. The weights sum to 1.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ExpDecayWeights returns weights proportional to decay^rank, normalised to
// sum to 1. Used for the exponentially decreasing app popularity the paper
// observes in Fig 5(a).
func ExpDecayWeights(n int, decay float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	v := 1.0
	for i := range w {
		w[i] = v
		sum += v
		v *= decay
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
