package randx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	// Splitting children must not depend on parent consumption order.
	c1 := root.Split("traffic", 10)
	_ = root.Float64() // consume parent
	c1again := New(7).Split("traffic", 10)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatalf("split stream not stable under parent consumption (draw %d)", i)
		}
	}
}

func TestSplitKeysDistinct(t *testing.T) {
	root := New(7)
	a := root.Split("traffic", 10)
	b := root.Split("traffic", 11)
	c := root.Split("mobility", 10)
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv || av == cv || bv == cv {
		t.Fatalf("split streams with distinct keys collided: %x %x %x", av, bv, cv)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(11)
	const n = 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormalMedian(3000, 1.0)
	}
	med := median(vals)
	if med < 2700 || med > 3300 {
		t.Fatalf("lognormal median = %.0f, want ~3000", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(13)
	const n = 50000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 1.5)
		if v < 1 {
			t.Fatalf("pareto below xm: %g", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.5 ≈ 0.0316.
	frac := float64(over) / n
	if frac < 0.02 || frac > 0.045 {
		t.Fatalf("pareto tail mass P(X>10) = %.4f, want ≈0.0316", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.06*mean+0.05 {
			t.Fatalf("poisson(%g) sample mean = %.3f", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("poisson of non-positive mean must be 0")
	}
}

func TestGeometric(t *testing.T) {
	r := New(19)
	const p = 0.25
	const n = 40000
	var sum float64
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("negative geometric %d", g)
		}
		sum += float64(g)
	}
	want := (1 - p) / p // = 3
	got := sum / n
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("geometric mean = %.3f, want %.3f", got, want)
	}
	if r.Geometric(1) != 0 {
		t.Fatal("geometric(1) must be 0")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(5, 1)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Fatalf("weights not decreasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g", sum)
	}
	if got := w[0] / w[1]; math.Abs(got-2) > 1e-12 {
		t.Fatalf("rank ratio = %g, want 2", got)
	}
	if ZipfWeights(0, 1) != nil {
		t.Fatal("ZipfWeights(0) should be nil")
	}
}

func TestExpDecayWeights(t *testing.T) {
	w := ExpDecayWeights(4, 0.5)
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %g", sum)
	}
	if math.Abs(w[0]/w[1]-2) > 1e-12 {
		t.Fatalf("decay ratio wrong: %g", w[0]/w[1])
	}
}

// Property: weights produced by both weight helpers are a valid simplex for
// any size and parameter in range.
func TestWeightsSimplexProperty(t *testing.T) {
	f := func(n uint8, s uint8) bool {
		size := int(n%50) + 1
		shape := 0.1 + float64(s%30)/10
		for _, w := range [][]float64{ZipfWeights(size, shape), ExpDecayWeights(size, 0.3+float64(s%7)/10)} {
			var sum float64
			for _, v := range w {
				if v < 0 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// TestPermIntoMatchesPerm pins PermInto's contract: same permutation and
// same post-call stream state as Perm, with the slab reused across calls.
func TestPermIntoMatchesPerm(t *testing.T) {
	var slab []int
	for n := 0; n < 40; n++ {
		a := New(7).Split("perm", uint64(n))
		b := New(7).Split("perm", uint64(n))
		want := a.Perm(n)
		slab = b.PermInto(slab, n)
		if len(want) != len(slab) {
			t.Fatalf("n=%d: lengths differ: %d vs %d", n, len(want), len(slab))
		}
		for i := range want {
			if want[i] != slab[i] {
				t.Fatalf("n=%d: element %d differs: %d vs %d", n, i, want[i], slab[i])
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: stream state diverged after permuting", n)
		}
	}
}
