package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCategoricalErrors(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	c := MustCategorical(weights)
	r := New(5)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	c := MustCategorical([]float64{0, 1, 0, 2})
	r := New(9)
	for i := 0; i < 50000; i++ {
		got := c.Sample(r)
		if got == 0 || got == 2 {
			t.Fatalf("sampled zero-weight category %d", got)
		}
	}
}

func TestSampleKDistinct(t *testing.T) {
	c := MustCategorical(ZipfWeights(30, 1.2))
	r := New(21)
	for _, k := range []int{1, 5, 29, 30, 31} {
		got := c.SampleK(r, k)
		wantLen := k
		if k > 30 {
			wantLen = 30
		}
		if len(got) != wantLen {
			t.Fatalf("SampleK(%d) returned %d items", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 30 {
				t.Fatalf("SampleK produced out-of-range index %d", v)
			}
			if seen[v] {
				t.Fatalf("SampleK(%d) produced duplicate %d", k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKBiasTowardHeavy(t *testing.T) {
	// Rank 0 has weight far above rank 29, so it should nearly always be in
	// a small sample.
	c := MustCategorical(ExpDecayWeights(30, 0.6))
	r := New(23)
	hit := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		for _, v := range c.SampleK(r, 3) {
			if v == 0 {
				hit++
			}
		}
	}
	if frac := float64(hit) / trials; frac < 0.70 {
		t.Fatalf("heaviest category present in only %.2f of samples", frac)
	}
}

// Property: the alias table construction never panics and sampling stays in
// range for arbitrary positive weight vectors.
func TestCategoricalProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				any = true
			}
		}
		if !any {
			weights[0] = 1
		}
		c, err := NewCategorical(weights)
		if err != nil {
			return false
		}
		r := New(99)
		for i := 0; i < 64; i++ {
			got := c.Sample(r)
			if got < 0 || got >= len(weights) {
				return false
			}
			if weights[got] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSampleKIntoMatchesSampleK pins the draw-for-draw equivalence that
// lets hot paths swap SampleK for the slab variant: identical indices and
// an identical post-call stream state for every (n, k) shape, including the
// rejection-loop and reservoir-fallback regimes.
func TestSampleKIntoMatchesSampleK(t *testing.T) {
	weights := []float64{5, 1, 0.5, 3, 2, 0.1, 4, 1, 1, 2, 0.3, 6}
	c := MustCategorical(weights)
	var slab []int
	for k := 0; k <= len(weights)+2; k++ {
		a := New(99).Split("samplek", uint64(k))
		b := New(99).Split("samplek", uint64(k))
		want := c.SampleK(a, k)
		slab = c.SampleKInto(b, k, slab)
		if len(want) != len(slab) {
			t.Fatalf("k=%d: lengths differ: %d vs %d", k, len(want), len(slab))
		}
		for i := range want {
			if want[i] != slab[i] {
				t.Fatalf("k=%d: index %d differs: %d vs %d", k, i, want[i], slab[i])
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("k=%d: stream state diverged after sampling", k)
		}
	}
}
