package randx

import (
	"fmt"
	"slices"
)

// Categorical samples indices in proportion to a fixed weight vector in
// O(1) per draw using Vose's alias method. Building the table is O(n).
//
// A Categorical is immutable after construction and safe for concurrent use
// with distinct Rand streams.
type Categorical struct {
	prob  []float64
	alias []int
}

// NewCategorical builds an alias table for the given non-negative weights.
// At least one weight must be positive.
func NewCategorical(weights []float64) (*Categorical, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("randx: categorical needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("randx: negative weight %g at index %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("randx: all weights are zero")
	}

	c := &Categorical{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		c.prob[i] = 1
		c.alias[i] = i
	}
	for _, i := range small { // numerical leftovers
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c, nil
}

// MustCategorical is NewCategorical for static weight tables known to be
// valid; it panics on error.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.prob) }

// Sample draws one index using the provided stream.
func (c *Categorical) Sample(r *Rand) int {
	i := r.IntN(len(c.prob))
	if r.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}

// SampleK draws k distinct indices, weighted without replacement. It is
// O(k) draws in the common case and falls back to a weighted reservoir scan
// when k approaches the category count.
func (c *Categorical) SampleK(r *Rand, k int) []int {
	n := len(c.prob)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	// Rejection sampling is fast while k << n.
	attempts := 0
	for len(out) < k && attempts < 12*k {
		i := c.Sample(r)
		attempts++
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, i)
	}
	for i := 0; len(out) < k && i < n; i++ {
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			out = append(out, i)
		}
	}
	return out
}

// SampleKInto is SampleK writing into a caller-reused slab: the draw
// sequence is identical (duplicate detection never touches the stream), but
// the per-call result slice and dedup map are replaced by dst's backing
// array and a linear scan — k is small wherever this is hot.
func (c *Categorical) SampleKInto(r *Rand, k int, dst []int) []int {
	n := len(c.prob)
	if k >= n {
		dst = slices.Grow(dst[:0], n)[:n]
		for i := range dst {
			dst[i] = i
		}
		return dst
	}
	out := dst[:0]
	attempts := 0
	for len(out) < k && attempts < 12*k {
		i := c.Sample(r)
		attempts++
		if containsIndex(out, i) {
			continue
		}
		out = append(out, i)
	}
	for i := 0; len(out) < k && i < n; i++ {
		if !containsIndex(out, i) {
			out = append(out, i)
		}
	}
	return out
}

func containsIndex(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
