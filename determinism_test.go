package wearwild

import (
	"bytes"
	"fmt"
	"testing"
)

// TestByteIdenticalRuns is the determinism regression gate: the whole
// pipeline — generate, study, render, evaluate — executed twice in the
// same process from the same seed must produce byte-identical text.
// Go randomises map iteration order per map instance, so any emitting
// map-range that slipped past the wearlint maporder check (or any
// float reduction folded in map order) shows up here as a diff between
// two otherwise identical runs.
func TestByteIdenticalRuns(t *testing.T) {
	render := func() []byte {
		ds, err := Generate(SmallConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunStudy(ds)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		Render(&out, res, 0)
		if err := WriteExperimentsMarkdown(&out, Evaluate(res)); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatal(firstDiff(first, second))
	}
}

// firstDiff renders a small, positioned report of where two outputs
// diverge, so a determinism failure names the figure at fault.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("outputs diverge at line %d:\n  run 1: %s\n  run 2: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("outputs diverge in length: %d vs %d lines", len(al), len(bl))
}
