package wearwild

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"wearwild/internal/core"
)

var (
	eqOnce sync.Once
	eqDS   *Dataset
	eqErr  error
)

// eqDataset generates the shared equivalence-test dataset once.
func eqDataset(t *testing.T) *Dataset {
	t.Helper()
	eqOnce.Do(func() {
		eqDS, eqErr = Generate(SmallConfig(42))
	})
	if eqErr != nil {
		t.Fatal(eqErr)
	}
	return eqDS
}

// runWith executes the study at one (Workers, Shards) setting and returns
// the Results plus their canonical JSON serialisation.
func runWith(t *testing.T, ds *Dataset, workers, shards int) (*Results, []byte) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	cfg.Shards = shards
	res, err := RunStudyWith(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, raw
}

// TestParallelEquivalence is the determinism gate of the shard-and-merge
// pipeline: the Results tree must be deeply equal AND serialise to
// byte-identical JSON at every worker bound and shard count, including
// the fully sequential Workers=1/Shards=1 path. Any scheduling- or
// partition-dependent float or ordering difference fails here.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full small dataset")
	}
	ds := eqDataset(t)
	refRes, refJSON := runWith(t, ds, 1, 1)

	for _, workers := range []int{1, 2, 8} {
		for _, shards := range []int{1, 4, 32} {
			if workers == 1 && shards == 1 {
				continue
			}
			res, raw := runWith(t, ds, workers, shards)
			if !reflect.DeepEqual(refRes, res) {
				t.Errorf("workers=%d shards=%d: Results not deeply equal to sequential run", workers, shards)
			}
			if string(raw) != string(refJSON) {
				i := 0
				for i < len(raw) && i < len(refJSON) && raw[i] == refJSON[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				hi := i + 80
				if hi > len(raw) {
					hi = len(raw)
				}
				t.Errorf("workers=%d shards=%d: JSON diverges at byte %d: …%s…",
					workers, shards, i, raw[lo:hi])
			}
		}
	}
}

// TestParallelEquivalenceRepeatedRuns re-runs the same parallel study on
// one Study value: the pipeline must not mutate shared state between
// runs.
func TestParallelEquivalenceRepeatedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full small dataset")
	}
	ds := eqDataset(t)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	study, err := core.NewStudy(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatal("two Runs of one Study differ")
	}
}
