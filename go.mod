module wearwild

go 1.22
