package wearwild

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"wearwild/internal/core"
	"wearwild/internal/gen/sim"
)

// metricValues flattens an evaluation into "experiment/metric" → measured
// value, the 49-metric surface the paper-reproduction gate scores.
func metricValues(t *testing.T, res *Results) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, e := range Evaluate(res) {
		for _, m := range e.Metrics {
			key := e.ID + "/" + m.Name
			if _, dup := out[key]; dup {
				t.Fatalf("duplicate metric key %s", key)
			}
			out[key] = m.Measured
		}
	}
	return out
}

// TestStreamingMetricsEquivalence pins the streaming engine's scheduling
// independence at the metric level: all 49 paper-comparison metrics must
// be byte-identical (exact float equality, not tolerance) across
// Workers ∈ {1, 2, 8}. TestParallelEquivalence covers the whole Results
// tree; this test scores the surface the reproduction is graded on, so a
// drift inside any single figure names the metric it moved.
func TestStreamingMetricsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full small dataset")
	}
	ds := eqDataset(t)
	_, refJSON := runWith(t, ds, 1, 0)
	refRes := new(Results)
	if err := json.Unmarshal(refJSON, refRes); err != nil {
		t.Fatal(err)
	}
	ref := metricValues(t, refRes)
	const wantMetrics = 49
	if len(ref) != wantMetrics {
		t.Fatalf("metric surface changed: got %d metrics, want %d", len(ref), wantMetrics)
	}
	for _, workers := range []int{2, 8} {
		res, _ := runWith(t, ds, workers, 0)
		got := metricValues(t, res)
		for key, want := range ref {
			if got[key] != want {
				t.Errorf("workers=%d: metric %s = %v, want %v (sequential)", workers, key, got[key], want)
			}
		}
	}
}

// TestGeneratorStreamEquivalence pins the producer side of the stream
// interface: running the engine straight off sim.StreamSource — records
// derived one subscriber at a time, never a resident log — must produce
// the same Results tree, byte for byte, as the resident-dataset path for
// the same Config.
func TestGeneratorStreamEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a full small dataset")
	}
	ds := eqDataset(t)
	_, refJSON := runWith(t, ds, 2, 0)

	src, err := sim.NewStreamSource(SmallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	// Consume the population while streaming: the results must be
	// byte-identical whether or not the source releases users behind
	// itself (generation never reads another subscriber's entry).
	src.ConsumeUsers = true
	cfg := core.DefaultConfig()
	cfg.Workers = 2
	res, err := core.RunStream(core.Env{
		Devices:  src.Devices,
		Topology: src.Topology,
		Catalog:  src.Catalog,
	}, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(refJSON) {
		i := 0
		for i < len(raw) && i < len(refJSON) && raw[i] == refJSON[i] {
			i++
		}
		lo := max(i-80, 0)
		hi := min(i+80, len(raw))
		t.Errorf("generator stream diverges from resident dataset at byte %d: …%s…", i, raw[lo:hi])
	}
}

// peakHeapDuring runs fn while sampling runtime.MemStats, returning the
// highest HeapAlloc observed (test-local twin of the wearbench sampler).
func peakHeapDuring(fn func() error) (uint64, error) {
	runtime.GC()
	read := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	peak := read()
	done := make(chan struct{})
	sampled := make(chan uint64, 1)
	go func() {
		max := uint64(0)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sampled <- max
				return
			case <-tick.C:
				if h := read(); h > max {
					max = h
				}
			}
		}
	}()
	err := fn()
	close(done)
	if max := <-sampled; max > peak {
		peak = max
	}
	if h := read(); h > peak {
		peak = h
	}
	return peak, err
}

// TestBoundedMemory100x is the bounded-memory contract of the streaming
// engine: a population 100× the small benchmark scale, streamed straight
// from the generator (no resident dataset anywhere), must complete the
// full study under a heap ceiling of 2× the small-run peak recorded in
// BENCH_PR7.json. The surviving heap is O(population) subscriber state
// (substrate + one userStat each), never O(records) — the old engine
// materialised every record and could not finish this run at all.
//
// The run takes several minutes single-threaded, so it is opt-in:
//
//	WEARWILD_BIGMEM=1 go test -run TestBoundedMemory100x -timeout 30m .
func TestBoundedMemory100x(t *testing.T) {
	if os.Getenv("WEARWILD_BIGMEM") == "" {
		t.Skip("set WEARWILD_BIGMEM=1 to run the 100× bounded-memory study")
	}
	raw, err := os.ReadFile("BENCH_PR7.json")
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		StudyPeakHeapBytes uint64 `json:"study_peak_heap_bytes"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.StudyPeakHeapBytes == 0 {
		t.Fatal("BENCH_PR7.json records no study_peak_heap_bytes")
	}
	ceiling := 2 * bench.StudyPeakHeapBytes

	// The ceiling bounds heap occupancy, not allocation throughput; run
	// the collector eagerly so floating garbage does not dominate the
	// sampled peak on a multi-minute single-pass run.
	defer debug.SetGCPercent(debug.SetGCPercent(20))

	cfg := SmallConfig(1234)
	cfg.Population.WearableUsers *= 100
	cfg.Population.OrdinaryUsers *= 100
	cfg.OrdinaryMobilitySample *= 100

	src, err := sim.NewStreamSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream-only run: nothing reads the population after its records are
	// out, so let the source release each subscriber as they stream — the
	// heap then holds the study's per-subscriber state plus only the
	// unstreamed population tail, never both substrate and residues in
	// full.
	src.ConsumeUsers = true
	var res *Results
	peak, err := peakHeapDuring(func() error {
		var err error
		res, err = core.RunStream(core.Env{
			Devices:  src.Devices,
			Topology: src.Topology,
			Catalog:  src.Catalog,
		}, src, core.DefaultConfig())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fig2a.WearableUsers == 0 {
		t.Fatal("100× study identified no wearable users")
	}
	t.Logf("100× population: peak heap %d bytes (ceiling %d, small-run %d)",
		peak, ceiling, bench.StudyPeakHeapBytes)
	if peak >= ceiling {
		t.Fatalf("peak heap %d bytes breaches the 2× small-run ceiling %d: %.2fx",
			peak, ceiling, float64(peak)/float64(bench.StudyPeakHeapBytes))
	}
}
