// Adoption: reproduce the paper's §4.1 user-adoption analysis (Fig 2) and
// sweep the monthly growth parameter to show how the measured curve tracks
// the planted one — the kind of what-if a carrier would run before an
// Apple Watch launch.
package main

import (
	"fmt"
	"log"

	"wearwild"
)

func main() {
	fmt.Println("growth sweep: planted vs measured adoption")
	fmt.Println("planted %/month   measured %/month   measured total %   retained %   abandoned %")

	for _, monthly := range []float64{0.005, 0.015, 0.04} {
		cfg := wearwild.SmallConfig(11)
		// Adoption statistics ride on ~5% of the cohort, so use a larger
		// wearable population than the default small config; the ordinary
		// sample can stay small for this figure.
		cfg.Population.WearableUsers = 2500
		cfg.Population.MonthlyGrowth = monthly

		ds, err := wearwild.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wearwild.RunStudy(ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%15.1f   %16.2f   %16.1f   %10.0f   %11.0f\n",
			100*monthly,
			res.Fig2a.MonthlyGrowthPct,
			res.Fig2a.TotalGrowthPct,
			100*res.Fig2b.RetainedFrac,
			100*res.Fig2b.AbandonedFrac)
	}

	fmt.Println("\npaper reference: +1.5%/month, +9% total, 77% retained, 7% abandoned;")
	fmt.Println("only 34% of registered wearables ever transmit data.")
}
