// Apps: reproduce the paper's §5 application analysis — app popularity
// (Fig 5), category shares (Fig 6), per-usage intensity (Fig 7) and the
// third-party traffic split (Fig 8) — and show how the sessionisation gap
// changes what counts as "one usage".
package main

import (
	"fmt"
	"log"
	"time"

	"wearwild"
	"wearwild/internal/gen/apps"
)

func main() {
	ds, err := wearwild.Generate(wearwild.SmallConfig(23))
	if err != nil {
		log.Fatal(err)
	}
	res, err := wearwild.RunStudy(ds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top 10 apps by daily associated users (Fig 5a):")
	for i, row := range res.Fig5a {
		if i == 10 {
			break
		}
		fmt.Printf("  %2d. %-16s %6.2f%% of daily associations\n", i+1, row.App, row.DailyUsersSharePct)
	}

	fmt.Println("\ncategory user shares (Fig 6a):")
	for _, row := range res.Fig6 {
		fmt.Printf("  %-18s %6.2f%%\n", string(row.Category), row.UsersSharePct)
	}

	fmt.Println("\nheaviest apps per single usage (Fig 7):")
	for i, row := range res.Fig7 {
		if i == 5 {
			break
		}
		fmt.Printf("  %-16s %6.1f tx/usage  %8.1f KB/usage\n", row.App, row.TxPerUsage, row.KBPerUsage)
	}

	app := res.Fig8[apps.KindApplication].DataSharePct
	third := res.Fig8[apps.KindUtilities].DataSharePct +
		res.Fig8[apps.KindAdvertising].DataSharePct +
		res.Fig8[apps.KindAnalytics].DataSharePct
	fmt.Printf("\nfirst-party vs third-party data (Fig 8): %.1f%% vs %.1f%% — same order of magnitude\n", app, third)

	// Ablation: the paper's one-minute usage boundary vs wider gaps. A
	// larger gap merges usages, inflating per-usage transaction counts.
	fmt.Println("\nsessionisation-gap sensitivity (mean tx/usage of the top app):")
	for _, gap := range []time.Duration{30 * time.Second, time.Minute, 5 * time.Minute} {
		cfg := wearwild.DefaultStudyConfig()
		cfg.SessionGap = gap
		r2, err := wearwild.RunStudyWith(ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var top string
		var tx float64
		for _, row := range r2.Fig7 {
			if row.UsageSamples > 50 {
				top, tx = row.App, row.TxPerUsage
				break
			}
		}
		fmt.Printf("  gap %-4v -> %s at %.1f tx/usage\n", gap, top, tx)
	}
}
