// Quickstart: generate a synthetic ISP dataset, run the paper's analysis,
// and print every figure. This is the three-call flow of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"wearwild"
)

func main() {
	// A small deterministic dataset: ~800 SIM-wearable users plus a
	// 2400-user comparison sample, five simulated months.
	ds, err := wearwild.Generate(wearwild.SmallConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %d MME, %d proxy, %d UDR records\n",
		ds.MME.Len(), ds.Proxy.Len(), ds.UDR.Len())

	res, err := wearwild.RunStudy(ds)
	if err != nil {
		log.Fatal(err)
	}

	// Print every reproduced figure, truncating app tables to 15 rows.
	wearwild.Render(os.Stdout, res, 15)

	// The headline takeaways, programmatically.
	fmt.Printf("\nheadlines: +%.1f%% adoption, %.0f%% ever transmit, %.1f km/day, %.0f%% single-location\n",
		res.Fig2a.TotalGrowthPct, 100*res.Fig2a.DataActiveShare,
		res.Fig4c.OwnerMeanKm, 100*res.Fig4c.SingleLocationFrac)
}
