// Liveproxy: run the real transparent logging proxy on localhost and drive
// genuine TLS and HTTP clients through it — the zero-to-capture proof of
// the measurement path. The proxy extracts SNI from real ClientHellos
// (crypto/tls on the wire, our parser in the middle), logs one record per
// connection, and the records then flow through the same app-identification
// pipeline the study uses.
package main

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"sync"
	"time"

	"wearwild/internal/gen/apps"
	"wearwild/internal/mnet/imei"
	"wearwild/internal/mnet/netproxy"
	"wearwild/internal/mnet/proxylog"
	"wearwild/internal/mnet/subs"
	"wearwild/internal/study/appid"
	"wearwild/internal/study/sessions"
)

func main() {
	catalog := apps.Default()

	// Origins: one TLS echo server and one plain HTTP server, standing in
	// for app backends. Every catalogue host routes to them.
	tlsOrigin := startTLSOrigin()
	httpOrigin := startHTTPOrigin()

	// The proxy: SNI/URL sniffing, splicing, logging.
	var mu sync.Mutex
	var captured []proxylog.Record
	proxy, err := netproxy.New(netproxy.Config{
		Dial: func(host string, isTLS bool) (net.Conn, error) {
			if isTLS {
				return net.Dial("tcp", tlsOrigin)
			}
			return net.Dial("tcp", httpOrigin)
		},
		Identify: func(net.Addr) netproxy.Identity {
			return netproxy.Identity{IMSI: subs.MustNew(7), IMEI: imei.MustNew(35847309, 1)}
		},
		Log: func(r proxylog.Record) {
			mu.Lock()
			captured = append(captured, r)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Buffered handoff: Serve's result always finds a slot, so the
	// goroutine exits the moment the deferred Close stops the proxy.
	serveErr := make(chan error, 1)
	go func() { serveErr <- proxy.Serve(ln) }()
	defer proxy.Close()
	fmt.Printf("transparent proxy on %s\n\n", ln.Addr())

	// Drive a realistic burst: a Weather usage (app + CDN + analytics)
	// over TLS, then an HTTP fetch.
	weather, _ := catalog.ByName("Weather")
	hosts := []string{
		weather.Hosts[0],
		catalog.SharedHosts(apps.KindUtilities)[0],
		catalog.SharedHosts(apps.KindAnalytics)[0],
	}
	for _, host := range hosts {
		if err := tlsPing(ln.Addr().String(), host); err != nil {
			log.Fatalf("tls %s: %v", host, err)
		}
	}
	if err := httpGet(ln.Addr().String(), weather.Hosts[1], "/feed/latest"); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// The captured records enter the same pipeline as the study.
	mu.Lock()
	records := append([]proxylog.Record(nil), captured...)
	mu.Unlock()

	fmt.Printf("captured %d records:\n", len(records))
	for _, r := range records {
		fmt.Printf("  %-5s %-28s up=%-5d down=%-5d %v\n", r.Scheme, r.Host, r.BytesUp, r.BytesDown, r.Duration.Round(time.Millisecond))
	}

	resolver := appid.NewResolver(catalog)
	usages := sessions.Sessionize(records, time.Minute)
	attributed := resolver.Attribute(usages)
	fmt.Printf("\nsessionised into %d usage(s):\n", len(attributed))
	for _, u := range attributed {
		name := "(unattributed)"
		if u.App != nil {
			name = u.App.Name
		}
		fmt.Printf("  app=%-12s tx=%d bytes=%d hosts=%v\n", name, u.Transactions(), u.Bytes(), u.Hosts())
		for _, rec := range u.Records {
			fmt.Printf("    %-28s -> %s\n", rec.Host, resolver.KindOfHost(rec.Host))
		}
	}
}

// tlsPing performs a full TLS handshake through the proxy for the given
// SNI and exchanges a few bytes.
func tlsPing(proxyAddr, host string) error {
	conn, err := tls.Dial("tcp", proxyAddr, &tls.Config{
		ServerName: host,
		// The origin's throwaway certificate is not in any root store;
		// this example is about the wire path, not PKI.
		InsecureSkipVerify: true,
	})
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping " + host)); err != nil {
		return err
	}
	buf := make([]byte, 64)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err = conn.Read(buf)
	return err
}

// httpGet issues a cleartext request through the proxy.
func httpGet(proxyAddr, host, path string) error {
	conn, err := net.Dial("tcp", proxyAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", path, host)
	_, err = io.ReadAll(conn)
	return err
}

// startTLSOrigin runs a TLS echo server with a throwaway certificate.
func startTLSOrigin() string {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "origin"},
		DNSNames:     []string{"origin"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		log.Fatal(err)
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		log.Fatal(err)
	}
	//wearlint:ignore goleak demo origin lives for the whole process; main never closes its listener, so the accept loop is reaped at exit
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			//wearlint:ignore goleak per-connection echo in a process-lifetime demo origin; one read and one write, then the conn closes
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				n, _ := c.Read(buf)
				_, _ = c.Write(buf[:n])
			}(c)
		}
	}()
	return ln.Addr().String()
}

// startHTTPOrigin runs a minimal HTTP responder.
func startHTTPOrigin() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//wearlint:ignore goleak demo origin lives for the whole process; main never closes its listener, so the accept loop is reaped at exit
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			//wearlint:ignore goleak per-connection responder in a process-lifetime demo origin; answers one request, then the conn closes
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					line, err := br.ReadString('\n')
					if err != nil || line == "\r\n" || line == "\n" {
						break
					}
				}
				_, _ = io.WriteString(c, "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok")
			}(c)
		}
	}()
	return ln.Addr().String()
}
