// Mobility: reproduce the paper's §4.4 analysis — max displacement,
// location entropy and the single-location share (Fig 4c/4d) — and sweep
// the demographic mobility boost to show where the 2x owner/rest gap
// comes from.
package main

import (
	"fmt"
	"log"

	"wearwild"
)

func main() {
	ds, err := wearwild.Generate(wearwild.SmallConfig(31))
	if err != nil {
		log.Fatal(err)
	}
	res, err := wearwild.RunStudy(ds)
	if err != nil {
		log.Fatal(err)
	}

	m := res.Fig4c
	fmt.Println("Fig 4(c) — mobility of SIM-wearable users vs remaining customers")
	fmt.Printf("  owner mean daily max displacement  %.1f km (paper ≈20)\n", m.OwnerMeanKm)
	fmt.Printf("  owner p90                          %.1f km (paper ≈30)\n", m.OwnerP90Km)
	fmt.Printf("  rest mean                          %.1f km (paper ratio ≈2x)\n", m.RestMeanKm)
	fmt.Printf("  location entropy gain              %+.0f%% (paper +70%%)\n", m.EntropyGainPct)
	fmt.Printf("  single-location transmitters       %.0f%% (paper 60%%)\n", 100*m.SingleLocationFrac)
	fmt.Printf("  displacement vs tx/hour Spearman   %.2f (Fig 4d)\n\n", res.Fig4d.Spearman)

	// Where does the gap come from? Sweep the demographic boost.
	fmt.Println("mobility-boost sweep (owner/rest displacement ratio):")
	for _, boost := range []float64{1.0, 1.6, 2.2} {
		cfg := wearwild.SmallConfig(31)
		cfg.Population.OwnerMobilityBoost = boost
		ds2, err := wearwild.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := wearwild.RunStudy(ds2)
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if r2.Fig4c.RestMeanKm > 0 {
			ratio = r2.Fig4c.OwnerMeanKm / r2.Fig4c.RestMeanKm
		}
		fmt.Printf("  boost %.1f -> owners %.1f km, rest %.1f km, ratio %.2fx, entropy %+.0f%%\n",
			boost, r2.Fig4c.OwnerMeanKm, r2.Fig4c.RestMeanKm, ratio, r2.Fig4c.EntropyGainPct)
	}
	fmt.Println("\neven at boost 1.0 a gap remains: the employment mix alone makes the")
	fmt.Println("wearable demographic more mobile than the whole-population sample.")
}
