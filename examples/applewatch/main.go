// Applewatch: the what-if scenario the paper's conclusion anticipates —
// "we expect that this rise will be sharper once the Apple watch is
// supported by this ISP". We run the baseline five-month window against a
// counterfactual where the operator enables the SIM-enabled Apple Watch
// Series 3 and adoption accelerates, and compare the adoption rates and
// vendor mix the study measures.
package main

import (
	"fmt"
	"log"

	"wearwild"
	"wearwild/internal/mnet/imei"
)

func main() {
	type scenario struct {
		name          string
		appleWatch    bool
		monthlyGrowth float64
	}
	for _, sc := range []scenario{
		{"baseline (no Apple Watch, the paper's setting)", false, 0.015},
		{"what-if: Apple Watch enabled, 4x adoption growth", true, 0.06},
	} {
		cfg := wearwild.SmallConfig(17)
		cfg.Population.WearableUsers = 2000
		cfg.IncludeAppleWatch = sc.appleWatch
		cfg.Population.MonthlyGrowth = sc.monthlyGrowth

		ds, err := wearwild.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wearwild.RunStudy(ds)
		if err != nil {
			log.Fatal(err)
		}

		// Vendor mix of the identified wearables, via the same IMEI→model
		// join the study's identification stage performs.
		vendors := map[string]int{}
		total := 0
		for _, dev := range wearableDevices(ds) {
			if m, ok := ds.Devices.Lookup(dev); ok {
				vendors[m.Vendor]++
				total++
			}
		}

		fmt.Printf("%s\n", sc.name)
		fmt.Printf("  adoption: %+.1f%% total, %+.2f%%/month\n",
			res.Fig2a.TotalGrowthPct, res.Fig2a.MonthlyGrowthPct)
		fmt.Printf("  wearable users identified: %d\n", res.Fig2a.WearableUsers)
		fmt.Printf("  vendor mix:")
		for _, v := range []string{"Samsung", "LG", "Huawei", "Apple"} {
			if n := vendors[v]; n > 0 {
				fmt.Printf(" %s=%.0f%%", v, 100*float64(n)/float64(total))
			}
		}
		fmt.Println()
		fmt.Println()
	}
}

// wearableDevices lists the distinct wearable IMEIs seen in the MME log.
func wearableDevices(ds *wearwild.Dataset) []imei.IMEI {
	seen := map[imei.IMEI]bool{}
	var out []imei.IMEI
	for _, rec := range ds.MME.Records {
		if ds.Devices.IsWearable(rec.IMEI) && !seen[rec.IMEI] {
			seen[rec.IMEI] = true
			out = append(out, rec.IMEI)
		}
	}
	return out
}
